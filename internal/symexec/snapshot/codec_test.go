package snapshot

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/pathid"
	"repro/internal/solver"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-1)
	w.Varint(1 << 40)
	w.Varint(-(1 << 40))
	w.Int(-42)
	w.Float(3.5)
	w.String("")
	w.String("hello")
	w.Sym("alpha")
	w.Sym("beta")
	w.Sym("alpha") // interned: repeated sym reads back identically

	r := NewReader(w.Bytes())
	if b, err := r.Byte(); err != nil || b != 0xAB {
		t.Fatalf("Byte = %#x, %v", b, err)
	}
	for i, want := range []bool{true, false} {
		if b, err := r.Bool(); err != nil || b != want {
			t.Fatalf("Bool[%d] = %v, %v", i, b, err)
		}
	}
	for i, want := range []uint64{0, 1 << 40} {
		if v, err := r.Uvarint(); err != nil || v != want {
			t.Fatalf("Uvarint[%d] = %d, %v", i, v, err)
		}
	}
	for i, want := range []int64{-1, 1 << 40, -(1 << 40)} {
		if v, err := r.Varint(); err != nil || v != want {
			t.Fatalf("Varint[%d] = %d, %v", i, v, err)
		}
	}
	if v, err := r.Int(); err != nil || v != -42 {
		t.Fatalf("Int = %d, %v", v, err)
	}
	if v, err := r.Float(); err != nil || v != 3.5 {
		t.Fatalf("Float = %v, %v", v, err)
	}
	for i, want := range []string{"", "hello"} {
		if s, err := r.String(); err != nil || s != want {
			t.Fatalf("String[%d] = %q, %v", i, s, err)
		}
	}
	for i, want := range []string{"alpha", "beta", "alpha"} {
		if s, err := r.Sym(); err != nil || s != want {
			t.Fatalf("Sym[%d] = %q, %v", i, s, err)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("trailing bytes: %d", r.Len())
	}
}

func TestSymInterningCompacts(t *testing.T) {
	long := "a-rather-long-symbol-name-used-many-times"
	w := NewWriter()
	for i := 0; i < 10; i++ {
		w.Sym(long)
	}
	// First use costs the string; each repeat costs one varint byte.
	if max := len(long) + 2 + 9*2; w.Len() > max {
		t.Fatalf("interned encoding %d bytes, want <= %d", w.Len(), max)
	}
}

func TestSymOutOfOrderRejected(t *testing.T) {
	w := NewWriter()
	w.Uvarint(7) // references dictionary entry 7 in an empty dictionary
	if _, err := NewReader(w.Bytes()).Sym(); err == nil {
		t.Fatal("out-of-order symbol id accepted")
	}
}

func TestProgramRoundTrip(t *testing.T) {
	prog := bytecode.MustCompile("rt", `
global int g = 7;
func helper(int x) int { return x * 2; }
func main() int {
  int v = input_int("v");
  if (v > 10) { return helper(v); }
  return g;
}
`)
	w := NewWriter()
	EncodeProgram(w, prog)
	got, err := DecodeProgram(NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("DecodeProgram: %v", err)
	}
	if !reflect.DeepEqual(got, prog) {
		t.Fatalf("program mismatch after round trip:\n got %+v\nwant %+v", got, prog)
	}
	// Deterministic: re-encoding the decoded program gives the same bytes.
	w2 := NewWriter()
	EncodeProgram(w2, got)
	if !bytes.Equal(w.Bytes(), w2.Bytes()) {
		t.Fatal("re-encoding decoded program produced different bytes")
	}
}

func TestSolverTermsRoundTrip(t *testing.T) {
	cons := []solver.Constraint{
		{Op: solver.OpLe, E: solver.LinExpr{
			Terms: []solver.Term{{Coeff: 2, Var: 1}, {Coeff: -3, Var: 4}},
			Const: -17,
		}},
		{Op: solver.OpEq, E: solver.ConstExpr(0)},
	}
	m := solver.Model{0: 5, 3: -9}
	w := NewWriter()
	EncodeConstraints(w, cons)
	EncodeModel(w, m)
	EncodeModel(w, nil)
	r := NewReader(w.Bytes())
	gotCons, err := DecodeConstraints(r)
	if err != nil {
		t.Fatalf("DecodeConstraints: %v", err)
	}
	if !reflect.DeepEqual(gotCons, cons) {
		t.Fatalf("constraints = %+v, want %+v", gotCons, cons)
	}
	gotM, err := DecodeModel(r)
	if err != nil || !reflect.DeepEqual(gotM, m) {
		t.Fatalf("model = %+v, %v, want %+v", gotM, err, m)
	}
	gotNil, err := DecodeModel(r)
	if err != nil || gotNil != nil {
		t.Fatalf("nil model = %+v, %v", gotNil, err)
	}
}

func TestCandidateRoundTrip(t *testing.T) {
	cand := &pathid.CandidatePath{
		Nodes: []pathid.PathNode{
			{Loc: trace.Location{Func: "main", Kind: trace.EventEnter}},
			{
				Loc: trace.Location{Func: "copy_in", Kind: trace.EventEnter},
				Pred: &stats.Predicate{
					Loc:       trace.Location{Func: "copy_in", Kind: trace.EventEnter},
					Var:       "s",
					IsString:  true,
					Threshold: 16.5,
					Score:     0.875,
					Err:       2,
					CountC:    40,
					CountF:    10,
				},
			},
		},
		AvgScore: 0.8125,
		Detours:  1,
	}
	w := NewWriter()
	EncodeCandidate(w, cand)
	got, err := DecodeCandidate(NewReader(w.Bytes()))
	if err != nil {
		t.Fatalf("DecodeCandidate: %v", err)
	}
	if !reflect.DeepEqual(got, cand) {
		t.Fatalf("candidate = %+v, want %+v", got, cand)
	}
}

func TestInputRoundTrip(t *testing.T) {
	in := &interp.Input{
		Ints: map[string]int64{"n": 3},
		Strs: map[string]string{"s": "abc"},
		Env:  map[string]string{"HOME": "/tmp"},
		Args: []string{"prog", "-x"},
	}
	w := NewWriter()
	EncodeInput(w, in)
	EncodeInput(w, nil)
	r := NewReader(w.Bytes())
	got, err := DecodeInput(r)
	if err != nil || !reflect.DeepEqual(got, in) {
		t.Fatalf("input = %+v, %v, want %+v", got, err, in)
	}
	gotNil, err := DecodeInput(r)
	if err != nil || gotNil != nil {
		t.Fatalf("nil input = %+v, %v", gotNil, err)
	}
}

// TestGarbageNeverPanics decodes structured types from adversarial byte
// strings; every outcome must be an error or a value, never a panic.
func TestGarbageNeverPanics(t *testing.T) {
	payloads := [][]byte{
		{},
		{0xFF},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		{0x01, 0x00, 0x80},
		bytes.Repeat([]byte{0x7F}, 64),
	}
	// Include a truncation sweep of a valid program encoding.
	prog := bytecode.MustCompile("trunc", `func main() int { return input_int("x"); }`)
	w := NewWriter()
	EncodeProgram(w, prog)
	valid := w.Bytes()
	for i := 0; i < len(valid); i += 3 {
		payloads = append(payloads, valid[:i])
	}
	for i, p := range payloads {
		if _, err := DecodeProgram(NewReader(p)); err == nil && i < 5 {
			t.Errorf("garbage payload %d decoded as a program", i)
		}
		DecodeCandidate(NewReader(p))
		DecodeConstraints(NewReader(p))
		DecodeModel(NewReader(p))
		DecodeInput(NewReader(p))
	}
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes to every structured decoder
// (they must never panic) and, when the bytes decode, re-encodes the value
// to check encode∘decode is a projection (stable on its image).
func FuzzSnapshotRoundTrip(f *testing.F) {
	prog := bytecode.MustCompile("fuzzseed", `
func main() int {
  int v = input_int("v");
  if (v > 3) { return 1; }
  return 0;
}
`)
	w := NewWriter()
	EncodeProgram(w, prog)
	f.Add(w.Bytes())
	w = NewWriter()
	EncodeConstraints(w, []solver.Constraint{{Op: solver.OpNe, E: solver.VarExpr(0)}})
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := DecodeProgram(NewReader(data)); err == nil {
			w := NewWriter()
			EncodeProgram(w, p)
			if p2, err := DecodeProgram(NewReader(w.Bytes())); err != nil || !reflect.DeepEqual(p2, p) {
				t.Fatalf("program re-decode mismatch: %v", err)
			}
		}
		if c, err := DecodeConstraints(NewReader(data)); err == nil {
			w := NewWriter()
			EncodeConstraints(w, c)
			if c2, err := DecodeConstraints(NewReader(w.Bytes())); err != nil || !reflect.DeepEqual(c2, c) {
				t.Fatalf("constraints re-decode mismatch: %v", err)
			}
		}
		DecodeCandidate(NewReader(data))
		DecodeModel(NewReader(data))
		DecodeInput(NewReader(data))
	})
}
