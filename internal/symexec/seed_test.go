package symexec

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

// seedSrc contains two reachable faults selected by the mode string.
const seedSrc = `
func pack(string title) int {
  buf header[8];
  int i = 0;
  while (i < len(title)) {
    bufwrite(header, i, char(title, i));
    i = i + 1;
  }
  return i;
}
func unpack(string body) int {
  buf payload[24];
  int i = 0;
  while (i < len(body)) {
    bufwrite(payload, i, char(body, i));
    i = i + 1;
  }
  return i;
}
func main() int {
  string mode = input_string("mode");
  if (mode == "encode") {
    return pack(input_string("title"));
  }
  return unpack(input_string("body"));
}
`

// TestSeedSteersExploration: the seed input's failing path is found first,
// so the reported vulnerability matches the seed's crash site.
func TestSeedSteersExploration(t *testing.T) {
	cases := []struct {
		name     string
		seed     *interp.Input
		wantFunc string
	}{
		{
			name: "decode",
			seed: &interp.Input{Strs: map[string]string{
				"mode": "decode",
				"body": strings.Repeat("b", 30),
			}},
			wantFunc: "unpack",
		},
		{
			name: "encode",
			seed: &interp.Input{Strs: map[string]string{
				"mode":  "encode",
				"title": strings.Repeat("t", 12),
			}},
			wantFunc: "pack",
		},
	}
	for _, tc := range cases {
		prog := bytecode.MustCompile("seed", seedSrc)
		// Confirm the seed crashes where expected, concretely.
		conc, err := interp.Run(prog, tc.seed, interp.Config{})
		if err != nil || !conc.Faulty() || conc.FaultFunc != tc.wantFunc {
			t.Fatalf("%s: seed does not crash in %s: %+v", tc.name, tc.wantFunc, conc)
		}
		spec := &InputSpec{MaxStrLen: 32, SeedInput: tc.seed}
		opts := DefaultOptions()
		opts.Sched = NewDFS() // follow the seeded model depth-first
		ex := New(prog, spec, opts)
		res := ex.Run()
		if !res.Found() {
			t.Fatalf("%s: nothing found", tc.name)
		}
		if res.Vulns[0].Func != tc.wantFunc {
			t.Errorf("%s: first vulnerability in %s, want %s (seed not steering)",
				tc.name, res.Vulns[0].Func, tc.wantFunc)
		}
		confirmWitness(t, seedSrc, res.Vulns[0])
	}
}

// TestSeedDoesNotRestrictSearch: with a benign seed the engine still finds
// a vulnerability — seeding orders exploration, it does not constrain it.
func TestSeedDoesNotRestrictSearch(t *testing.T) {
	prog := bytecode.MustCompile("seedb", seedSrc)
	spec := &InputSpec{
		MaxStrLen: 32,
		SeedInput: &interp.Input{Strs: map[string]string{
			"mode": "decode",
			"body": "tiny", // benign
		}},
	}
	ex := New(prog, spec, DefaultOptions())
	res := ex.Run()
	if !res.Found() {
		t.Fatal("benign seed prevented discovery")
	}
}

// TestSeedIntChannel: integer seeds steer integer-driven branches.
func TestSeedIntChannel(t *testing.T) {
	src := `
func a(int v) void { if (v > 100) { assert(0); } return; }
func b(int v) void { if (v < -100) { assert(0); } return; }
func main() int {
  int x = input_int("x");
  a(x);
  b(x);
  return 0;
}`
	prog := bytecode.MustCompile("seedint", src)
	spec := &InputSpec{SeedInput: &interp.Input{Ints: map[string]int64{"x": -500}}}
	opts := DefaultOptions()
	opts.Sched = NewDFS()
	ex := New(prog, spec, opts)
	res := ex.Run()
	if !res.Found() {
		t.Fatal("nothing found")
	}
	if res.Vulns[0].Func != "b" {
		t.Errorf("seeded x=-500 found %s first, want b", res.Vulns[0].Func)
	}
}
