// Package symexec is the symbolic execution engine of the reproduction —
// the stand-in for KLEE. It interprets the same bytecode as the concrete VM
// but over symbolic values: integers are linear expressions over solver
// variables, strings carry symbolic lengths and lazily materialized byte
// variables (the paper's string-length workaround, §VI footnote 2), and
// branches on symbolic conditions fork states whose feasibility the solver
// checks.
//
// The executor detects vulnerabilities by satisfiability queries: a buffer
// write whose index can reach the capacity, a failable assertion, a
// reachable abort, or a possible division by zero. On detection it emits
// the full path (the sequence of function entry/exit locations), the path
// constraints, and a concrete witness input.
package symexec

import (
	"fmt"

	"repro/internal/solver"
)

// ValueKind is the dynamic type of a symbolic value.
type ValueKind int

// Value kinds.
const (
	KindInt ValueKind = iota + 1
	KindString
	KindBuf
)

// Value is a runtime value of the symbolic machine.
//
// Integers have two encodings:
//   - a linear expression (Lin) over solver variables — concrete integers
//     are constant expressions;
//   - a deferred comparison (Cond set, IsCond true), representing the 0/1
//     outcome of a comparison whose operands were symbolic. Conditions are
//     consumed by branch instructions (where they fork states) or
//     concretized on demand.
type Value struct {
	Kind ValueKind

	// Integer payload.
	Lin    solver.LinExpr
	Cond   solver.Constraint
	IsCond bool

	// String payload.
	Str *SymString

	// Buffer payload.
	Buf *SymBuffer
}

// IntVal returns a concrete integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Lin: solver.ConstExpr(v)} }

// LinVal wraps a linear expression as an integer value.
func LinVal(e solver.LinExpr) Value { return Value{Kind: KindInt, Lin: e} }

// CondVal wraps a deferred comparison outcome (1 when c holds, else 0).
func CondVal(c solver.Constraint) Value { return Value{Kind: KindInt, Cond: c, IsCond: true} }

// StrVal returns a concrete string value.
func StrVal(s string) Value {
	return Value{Kind: KindString, Str: &SymString{Lit: s, IsLit: true}}
}

// SymStrVal wraps a symbolic string.
func SymStrVal(s *SymString) Value { return Value{Kind: KindString, Str: s} }

// BufVal wraps a buffer.
func BufVal(b *SymBuffer) Value { return Value{Kind: KindBuf, Buf: b} }

// IsConcreteInt reports whether the value is an integer with a known
// constant.
func (v Value) IsConcreteInt() (int64, bool) {
	if v.Kind != KindInt || v.IsCond || !v.Lin.IsConst() {
		return 0, false
	}
	return v.Lin.Const, true
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		if v.IsCond {
			return fmt.Sprintf("cond(%s)", v.Cond.String(nil))
		}
		return v.Lin.String(nil)
	case KindString:
		return v.Str.Describe()
	case KindBuf:
		return fmt.Sprintf("buf[%d]", v.Buf.Cap)
	default:
		return "<invalid>"
	}
}

// SymString is a (possibly symbolic) string. Concrete strings set IsLit.
// Symbolic strings are identified by ID; their length is the solver
// variable LenVar and their bytes are materialized lazily through the
// executor's byte registry, so a given (string, index) pair always maps to
// the same solver variable in every state.
type SymString struct {
	IsLit bool
	Lit   string

	ID     int
	Label  string
	LenVar solver.Var

	// ByteBase/ByteStride describe a pre-reserved block of byte variables:
	// byte i is solver.Var(ByteBase + ByteStride*i) for i < ByteLen, with
	// metadata (bounds [0,255], name "label[i]") carried by the block's
	// range record in the variable table. Blocks make byte variable IDs
	// independent of which worker touches a byte first under parallel
	// frontier execution. ByteStride == 0 means no block was reserved and
	// bytes go through the executor's lazy map (the sequential engine's
	// path).
	ByteBase   solver.Var
	ByteStride int32
	ByteLen    int
}

// LenExpr returns the string's length as a linear expression.
func (s *SymString) LenExpr() solver.LinExpr {
	if s.IsLit {
		return solver.ConstExpr(int64(len(s.Lit)))
	}
	return solver.VarExpr(s.LenVar)
}

// Describe renders the string for diagnostics.
func (s *SymString) Describe() string {
	if s.IsLit {
		return fmt.Sprintf("%q", s.Lit)
	}
	return fmt.Sprintf("sym-str(%s#%d)", s.Label, s.ID)
}

// SymBuffer is the identity of a fixed-capacity buffer of integer cells.
// Capacities are always concrete (buffer sizes are declaration literals).
// The cell contents live in the owning State's heap (see State.bufCells):
// keeping the identity separate from the storage is what lets forked
// states share buffer contents copy-on-write while aliases within one
// state (the same buffer reachable through a local and the operand stack)
// keep observing each other's writes.
type SymBuffer struct {
	Cap int
}

// NewSymBuffer allocates a buffer identity. A buffer with no heap entry
// reads as all zeroes and not smeared, so a fresh buffer needs no storage
// until first written.
func NewSymBuffer(capacity int) *SymBuffer {
	return &SymBuffer{Cap: capacity}
}

// Cells are stored in fixed windows so a post-fork write copies one chunk,
// not the whole buffer — the difference between O(cap) and O(1) per write
// in fork-heavy loops.
const (
	cellChunkShift = 5 // 32 cells per chunk
	cellChunkSize  = 1 << cellChunkShift
	cellChunkMask  = cellChunkSize - 1
)

// heapToken is an ownership token for heap storage. Each state holds (at
// most) one current token; chunks and cell headers stamped with it may be
// mutated in place by that state. Forking replaces both sides' tokens, so
// every piece of storage stamped with an older token is frozen — an O(1)
// revocation that needs no walk over the heap and no atomics: the only
// writes a fork performs are to the two states' private token fields.
type heapToken struct{ _ byte }

// cellChunk is one window of buffer cells. A state may write data in place
// only while owner matches its current heap token; anyone else (including
// the creating state after it forks) installs a copied chunk first.
type cellChunk struct {
	owner *heapToken
	data  [cellChunkSize]Value
}

// bufCells is the storage of one buffer within one state's heap: a chunk
// index sharing frozen chunks with related states. A nil chunk reads as
// all-zero cells, so untouched windows of a buffer never materialize.
type bufCells struct {
	owner  *heapToken
	chunks []*cellChunk
	// smeared marks buffers written through a symbolic index: individual
	// cell contents are no longer tracked precisely, and reads return
	// fresh unconstrained values.
	smeared bool
}
