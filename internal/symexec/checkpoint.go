package symexec

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/corpus"
	"repro/internal/solver"
	"repro/internal/symexec/snapshot"
)

// Checkpoint capture and resume. A checkpoint is the complete serialized
// search of a sequential pure-mode executor — program, input spec, solver
// variable table, input registry, effort counters, and every live state —
// such that resuming it and running to completion produces the same result
// an uninterrupted run would have (except wall-clock fields). The solver's
// exact-match cache travels with the checkpoint, so even the hit/miss
// history — and with it every solver counter — replays identically.
//
// Capture is restricted to the configurations where that equivalence is
// provable: the sequential engine (no worker lanes, whose variable IDs are
// lane-striped), no guidance hook and no summarized calls (their closures
// cannot cross a process boundary), and a dense variable table. The
// equivalence additionally assumes the run stopped at a quantum boundary
// with a FIFO scheduler; a mid-quantum step-limit stop re-enqueues the
// interrupted state at the BFS tail, which is exactly the order the
// checkpoint preserves, so capture-after-StepLimited resumes faithfully.
const checkpointVersion = 1

// EncodeCheckpoint serializes the executor's current search. The scheduler
// is drained and re-filled in the same order, so a FIFO scheduler is
// unchanged by capture; order-sensitive schedulers other than BFS should
// not be captured mid-run.
func (ex *Executor) EncodeCheckpoint() ([]byte, error) {
	if err := ex.checkpointable(); err != nil {
		return nil, err
	}
	w := snapshot.NewWriter()
	w.Uvarint(checkpointVersion)
	snapshot.EncodeProgram(w, ex.Prog)
	EncodeSpec(w, ex.inputs.spec)
	encodeTable(w, ex.Table)
	e := newStateEncoder(w)
	encodeRegistry(e, ex.inputs)
	ex.encodeCounters(w)
	ex.encodeVisits(w)
	return ex.encodeStates(e, w)
}

// checkpointable reports whether this executor's configuration is inside
// the provable-equivalence envelope.
func (ex *Executor) checkpointable() error {
	switch {
	case ex.parallel || ex.Opts.Workers > 0:
		return fmt.Errorf("symexec: checkpoint requires the sequential engine (Workers=0)")
	case ex.Opts.Hook != nil:
		return fmt.Errorf("symexec: checkpoint cannot capture a guidance hook")
	case ex.Opts.Calls != nil:
		return fmt.Errorf("symexec: checkpoint cannot capture a call policy")
	case !ex.Table.Dense():
		return fmt.Errorf("symexec: checkpoint requires a dense variable table")
	}
	return nil
}

func encodeTable(w *snapshot.Writer, t *solver.VarTable) {
	infos := t.Export()
	w.Int(len(infos))
	for _, vi := range infos {
		w.Sym(vi.Name)
		w.Bool(vi.HasLo)
		w.Bool(vi.HasHi)
		w.Varint(vi.Lo)
		w.Varint(vi.Hi)
	}
}

func decodeTable(r *snapshot.Reader) (*solver.VarTable, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("symexec: variable count %d out of range", n)
	}
	infos := make([]solver.VarInfo, n)
	for i := range infos {
		if infos[i].Name, err = r.Sym(); err != nil {
			return nil, err
		}
		if infos[i].HasLo, err = r.Bool(); err != nil {
			return nil, err
		}
		if infos[i].HasHi, err = r.Bool(); err != nil {
			return nil, err
		}
		if infos[i].Lo, err = r.Varint(); err != nil {
			return nil, err
		}
		if infos[i].Hi, err = r.Varint(); err != nil {
			return nil, err
		}
	}
	t := solver.NewVarTable()
	if err := t.Restore(infos); err != nil {
		return nil, err
	}
	return t, nil
}

// encodeRegistry writes the input registry through the state encoder so
// its symbolic-string identities join the shared side table (a state's
// local holding input_string("x") must decode to the same *SymString the
// registry hands the next input_string("x") call).
func encodeRegistry(e *stateEncoder, reg *inputRegistry) {
	w := e.w
	w.Int(len(reg.intOrder))
	for _, name := range reg.intOrder {
		w.Sym(name)
		w.Varint(int64(reg.ints[name]))
	}
	w.Int(len(reg.strOrder))
	for _, key := range reg.strOrder {
		w.Sym(key)
		e.symStr(reg.strs[key])
	}
	keys := make([]byteKey, 0, len(reg.bytes))
	for k := range reg.bytes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].strID != keys[j].strID {
			return keys[i].strID < keys[j].strID
		}
		return keys[i].idx < keys[j].idx
	})
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k.strID)
		w.Varint(k.idx)
		w.Varint(int64(reg.bytes[k]))
	}
	w.Int(reg.nextStrID)
	ids := make([]int, 0, len(reg.seedStrs))
	for id := range reg.seedStrs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	w.Int(len(ids))
	for _, id := range ids {
		w.Int(id)
		w.String(reg.seedStrs[id])
	}
}

func decodeRegistry(d *stateDecoder, reg *inputRegistry) error {
	r := d.r
	nints, err := r.Int()
	if err != nil {
		return err
	}
	if nints < 0 || nints > r.Len() {
		return fmt.Errorf("symexec: int-channel count %d out of range", nints)
	}
	for i := 0; i < nints; i++ {
		name, err := r.Sym()
		if err != nil {
			return err
		}
		v, err := r.Varint()
		if err != nil {
			return err
		}
		reg.ints[name] = solver.Var(v)
		reg.intOrder = append(reg.intOrder, name)
	}
	nstrs, err := r.Int()
	if err != nil {
		return err
	}
	if nstrs < 0 || nstrs > r.Len() {
		return fmt.Errorf("symexec: string-channel count %d out of range", nstrs)
	}
	for i := 0; i < nstrs; i++ {
		key, err := r.Sym()
		if err != nil {
			return err
		}
		s, err := d.symStr()
		if err != nil {
			return err
		}
		reg.strs[key] = s
		reg.strOrder = append(reg.strOrder, key)
	}
	nbytes, err := r.Int()
	if err != nil {
		return err
	}
	if nbytes < 0 || nbytes > r.Len() {
		return fmt.Errorf("symexec: byte-variable count %d out of range", nbytes)
	}
	for i := 0; i < nbytes; i++ {
		var k byteKey
		if k.strID, err = r.Int(); err != nil {
			return err
		}
		if k.idx, err = r.Varint(); err != nil {
			return err
		}
		v, err := r.Varint()
		if err != nil {
			return err
		}
		reg.bytes[k] = solver.Var(v)
	}
	if reg.nextStrID, err = r.Int(); err != nil {
		return err
	}
	nseed, err := r.Int()
	if err != nil {
		return err
	}
	if nseed < 0 || nseed > r.Len() {
		return fmt.Errorf("symexec: seed-string count %d out of range", nseed)
	}
	if nseed > 0 {
		reg.seedStrs = make(map[int]string, nseed)
	}
	for i := 0; i < nseed; i++ {
		id, err := r.Int()
		if err != nil {
			return err
		}
		val, err := r.String()
		if err != nil {
			return err
		}
		reg.seedStrs[id] = val
	}
	return nil
}

// encodeCounters writes the executor's deterministic effort counters and
// the solver's logical query counters, so a resumed run's final Result
// reports run-global totals rather than resumed-portion ones.
func (ex *Executor) encodeCounters(w *snapshot.Writer) {
	w.Int(ex.nextID)
	w.Int(ex.nextSeq)
	res := ex.res
	w.Int(res.Paths)
	w.Int(res.StatesCreated)
	w.Int(res.MaxLive)
	w.Varint(res.Steps)
	w.Int(res.Forks)
	w.Int(res.SummaryCalls)
	w.Int(res.SummaryPaths)
	w.Int(res.HavocCalls)
	w.Int(res.DepthExhausted)
	w.Int(res.Revivals)
	w.Int(ex.Solver.Queries.Checks)
	w.Int(ex.Solver.Queries.Sat)
	w.Int(ex.Solver.Queries.Unsat)
	w.Int(ex.Solver.Queries.Unknown)
	w.Int(ex.Solver.Hits)
	w.Int(ex.Solver.Misses)
	w.Int(ex.Solver.FastSat)
	w.Int(ex.Solver.FastUnsat)
	w.Int(ex.Solver.Evictions)
	w.Int(len(res.Vulns))
	for _, v := range res.Vulns {
		EncodeVulnerability(w, v)
	}
	encodeSolverCache(w, ex.Solver)
}

// encodeSolverCache ships the exact-match cache so the resumed executor
// replays the captured run's hit/miss history (see solver.CacheEntry).
func encodeSolverCache(w *snapshot.Writer, cs *solver.CachedSolver) {
	entries := cs.ExportCache()
	w.Int(len(entries))
	for _, e := range entries {
		w.Uvarint(e.Digest.Sum)
		w.Int(e.Digest.N)
		w.Uvarint(e.BSig)
		w.Uvarint(e.Origin)
		snapshot.EncodeConstraints(w, e.Cons)
		w.Int(int(e.Res))
		snapshot.EncodeModel(w, e.Model)
	}
}

func decodeSolverCache(r *snapshot.Reader, cs *solver.CachedSolver) error {
	n, err := r.Int()
	if err != nil {
		return err
	}
	if n < 0 || n > r.Len() {
		return fmt.Errorf("symexec: cache entry count %d out of range", n)
	}
	entries := make([]solver.CacheEntry, n)
	for i := range entries {
		e := &entries[i]
		if e.Digest.Sum, err = r.Uvarint(); err != nil {
			return err
		}
		if e.Digest.N, err = r.Int(); err != nil {
			return err
		}
		if e.BSig, err = r.Uvarint(); err != nil {
			return err
		}
		if e.Origin, err = r.Uvarint(); err != nil {
			return err
		}
		if e.Cons, err = snapshot.DecodeConstraints(r); err != nil {
			return err
		}
		res, err := r.Int()
		if err != nil {
			return err
		}
		e.Res = solver.Result(res)
		if e.Model, err = snapshot.DecodeModel(r); err != nil {
			return err
		}
	}
	cs.ImportCache(entries)
	return nil
}

func (ex *Executor) decodeCounters(r *snapshot.Reader) error {
	ints := []*int{
		&ex.nextID, &ex.nextSeq,
		&ex.res.Paths, &ex.res.StatesCreated, &ex.res.MaxLive,
	}
	var err error
	for _, p := range ints {
		if *p, err = r.Int(); err != nil {
			return err
		}
	}
	if ex.res.Steps, err = r.Varint(); err != nil {
		return err
	}
	ints = []*int{
		&ex.res.Forks, &ex.res.SummaryCalls, &ex.res.SummaryPaths,
		&ex.res.HavocCalls, &ex.res.DepthExhausted, &ex.res.Revivals,
		&ex.Solver.Queries.Checks, &ex.Solver.Queries.Sat,
		&ex.Solver.Queries.Unsat, &ex.Solver.Queries.Unknown,
		&ex.Solver.Hits, &ex.Solver.Misses,
		&ex.Solver.FastSat, &ex.Solver.FastUnsat, &ex.Solver.Evictions,
	}
	for _, p := range ints {
		if *p, err = r.Int(); err != nil {
			return err
		}
	}
	nv, err := r.Int()
	if err != nil {
		return err
	}
	if nv < 0 || nv > r.Len() {
		return fmt.Errorf("symexec: vulnerability count %d out of range", nv)
	}
	for i := 0; i < nv; i++ {
		v, err := DecodeVulnerability(r)
		if err != nil {
			return err
		}
		ex.res.Vulns = append(ex.res.Vulns, v)
	}
	return decodeSolverCache(r, ex.Solver)
}

// encodeVisits writes the per-instruction visit counters sparsely (only
// allocated functions, only nonzero cells).
func (ex *Executor) encodeVisits(w *snapshot.Writer) {
	nz := 0
	for _, v := range ex.visits {
		if v != nil {
			nz++
		}
	}
	w.Int(nz)
	for i, v := range ex.visits {
		if v == nil {
			continue
		}
		w.Int(i)
		cnt := 0
		for _, c := range v {
			if c != 0 {
				cnt++
			}
		}
		w.Int(cnt)
		for pc, c := range v {
			if c != 0 {
				w.Int(pc)
				w.Varint(c)
			}
		}
	}
}

func (ex *Executor) decodeVisits(r *snapshot.Reader) error {
	nz, err := r.Int()
	if err != nil {
		return err
	}
	if nz < 0 || nz > len(ex.visits) {
		return fmt.Errorf("symexec: visit function count %d out of range", nz)
	}
	for i := 0; i < nz; i++ {
		fi, err := r.Int()
		if err != nil {
			return err
		}
		if fi < 0 || fi >= len(ex.visits) {
			return fmt.Errorf("symexec: visit function index %d out of range", fi)
		}
		v := make([]int64, len(ex.Prog.Funcs[fi].Code))
		cnt, err := r.Int()
		if err != nil {
			return err
		}
		if cnt < 0 || cnt > len(v) {
			return fmt.Errorf("symexec: visit cell count %d out of range", cnt)
		}
		for j := 0; j < cnt; j++ {
			pc, err := r.Int()
			if err != nil {
				return err
			}
			if pc < 0 || pc >= len(v) {
				return fmt.Errorf("symexec: visit pc %d out of range", pc)
			}
			if v[pc], err = r.Varint(); err != nil {
				return err
			}
		}
		ex.visits[fi] = v
	}
	return nil
}

// encodeStates drains the scheduler, writes active then suspended states,
// and re-enqueues the active states in the drained order (identity for
// FIFO schedulers).
func (ex *Executor) encodeStates(e *stateEncoder, w *snapshot.Writer) ([]byte, error) {
	pi := make(progIndex, len(ex.Prog.Funcs))
	for i, f := range ex.Prog.Funcs {
		pi[f] = i
	}
	var active []*State
	for {
		st := ex.sched.Next()
		if st == nil {
			break
		}
		active = append(active, st)
	}
	w.Int(len(active))
	for _, st := range active {
		if err := e.state(st, pi); err != nil {
			return nil, err
		}
	}
	w.Int(len(ex.suspended))
	for _, st := range ex.suspended {
		if err := e.state(st, pi); err != nil {
			return nil, err
		}
	}
	for _, st := range active {
		ex.sched.Add(st)
	}
	return w.Bytes(), nil
}

// ResumeExecutor reconstructs an executor from a checkpoint blob. The blob
// is self-contained (program, spec, variable table, registry, states);
// opts supplies the run configuration, which must stay inside the same
// sequential pure-mode envelope capture requires. RunContext on the
// returned executor continues the search without re-running initialization.
//
// Budget semantics: the restored Steps/MaxStates counters carry over, so
// opts.MaxSteps and opts.MaxStates are run-global budgets — resuming with
// the captured run's limits stops immediately; raise them to continue.
func ResumeExecutor(blob []byte, opts Options) (*Executor, error) {
	if opts.Workers > 0 || opts.Hook != nil || opts.Calls != nil {
		return nil, fmt.Errorf("symexec: resume requires the sequential pure engine (no workers, hook, or call policy)")
	}
	r := snapshot.NewReader(blob)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("symexec: checkpoint version %d not supported (want %d)", ver, checkpointVersion)
	}
	prog, err := snapshot.DecodeProgram(r)
	if err != nil {
		return nil, err
	}
	spec, err := DecodeSpec(r)
	if err != nil {
		return nil, err
	}
	table, err := decodeTable(r)
	if err != nil {
		return nil, err
	}

	if opts.Sched == nil {
		opts.Sched = NewBFS()
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.BatchSize == 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	reg := newInputRegistry(table, spec)
	ex := &Executor{
		Prog:    prog,
		Table:   table,
		Solver:  solver.NewCached(solver.New()),
		Opts:    opts,
		inputs:  reg,
		sched:   opts.Sched,
		res:     &Result{},
		visits:  make([][]int64, len(prog.Funcs)),
		resumed: true,
	}
	ex.Solver.Shared = opts.SharedCache
	ex.Solver.FastPaths = opts.SolverFastPaths
	if cov, ok := opts.Sched.(*CoverageScheduler); ok {
		cov.SetVisitFunc(ex.visitCount)
	}

	d := newStateDecoder(r)
	if err := decodeRegistry(d, reg); err != nil {
		return nil, err
	}
	if err := ex.decodeCounters(r); err != nil {
		return nil, err
	}
	if err := ex.decodeVisits(r); err != nil {
		return nil, err
	}
	nactive, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nactive < 0 || nactive > r.Len() {
		return nil, fmt.Errorf("symexec: active state count %d out of range", nactive)
	}
	for i := 0; i < nactive; i++ {
		st, err := d.state(prog.Funcs)
		if err != nil {
			return nil, err
		}
		ex.sched.Add(st)
	}
	nsusp, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nsusp < 0 || nsusp > r.Len() {
		return nil, fmt.Errorf("symexec: suspended state count %d out of range", nsusp)
	}
	for i := 0; i < nsusp; i++ {
		st, err := d.state(prog.Funcs)
		if err != nil {
			return nil, err
		}
		ex.suspended = append(ex.suspended, st)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("symexec: %d trailing bytes after checkpoint", r.Len())
	}
	return ex, nil
}

// EncodeFrontierShards partitions the active frontier round-robin into n
// checkpoint blobs, each carrying the full program/spec/table/registry but
// zeroed effort counters and only its own states. Running every shard to
// exhaustion and summing their Results (plus the pre-shard base Result)
// reproduces the undivided run's totals, because in pure mode states
// explore independently — the scheduler order only decides discovery
// sequence, not the path set.
//
// Shards are rejected while states sit in the suspended pool (the revival
// rule is a global-frontier decision that sharding would distort).
func (ex *Executor) EncodeFrontierShards(n int) ([][]byte, error) {
	if err := ex.checkpointable(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("symexec: shard count %d must be positive", n)
	}
	if len(ex.suspended) != 0 {
		return nil, fmt.Errorf("symexec: cannot shard with %d suspended states", len(ex.suspended))
	}
	var active []*State
	for {
		st := ex.sched.Next()
		if st == nil {
			break
		}
		active = append(active, st)
	}
	for _, st := range active {
		ex.sched.Add(st)
	}
	pi := make(progIndex, len(ex.Prog.Funcs))
	for i, f := range ex.Prog.Funcs {
		pi[f] = i
	}
	blobs := make([][]byte, n)
	for s := 0; s < n; s++ {
		w := snapshot.NewWriter()
		w.Uvarint(checkpointVersion)
		snapshot.EncodeProgram(w, ex.Prog)
		EncodeSpec(w, ex.inputs.spec)
		encodeTable(w, ex.Table)
		e := newStateEncoder(w)
		encodeRegistry(e, ex.inputs)
		// Zeroed counters except ID/seq, which must stay globally unique
		// enough for deterministic per-shard tie-breaking. Layout mirrors
		// encodeCounters: Paths/StatesCreated/MaxLive, Steps (varint),
		// Forks through Revivals, nine solver baselines, vuln count.
		w.Int(ex.nextID)
		w.Int(ex.nextSeq)
		w.Int(0) // Paths
		w.Int(0) // StatesCreated
		w.Int(0) // MaxLive
		w.Varint(0) // Steps
		for i := 0; i < 6; i++ {
			w.Int(0) // Forks, SummaryCalls, SummaryPaths, HavocCalls, DepthExhausted, Revivals
		}
		for i := 0; i < 9; i++ {
			w.Int(0) // solver counter baselines
		}
		w.Int(0) // no vulnerabilities
		encodeSolverCache(w, ex.Solver)
		w.Int(0) // no visits
		var mine []*State
		for i, st := range active {
			if i%n == s {
				mine = append(mine, st)
			}
		}
		w.Int(len(mine))
		for _, st := range mine {
			if err := e.state(st, pi); err != nil {
				return nil, err
			}
		}
		w.Int(0) // no suspended states
		blobs[s] = w.Bytes()
	}
	return blobs, nil
}

// WriteCheckpointFile writes blob to path as a single CRC-framed .ssnap
// file, atomically.
func WriteCheckpointFile(path string, blob []byte) error {
	var buf bytes.Buffer
	if err := snapshot.WriteFrame(&buf, snapshot.FrameCheckpoint, blob); err != nil {
		return err
	}
	return corpus.WriteFileAtomic(filepath.Dir(path), filepath.Base(path), buf.Bytes())
}

// ReadCheckpointFile reads and validates a .ssnap file, returning the
// checkpoint payload.
func ReadCheckpointFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	typ, payload, err := snapshot.ReadFrame(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if typ != snapshot.FrameCheckpoint {
		return nil, fmt.Errorf("symexec: %s: unexpected frame type %#x", path, typ)
	}
	return payload, nil
}

// Pending reports the number of states waiting in the scheduler's
// frontier — for a freshly resumed checkpoint, the frontier it captured.
func (ex *Executor) Pending() int { return ex.sched.Len() }
