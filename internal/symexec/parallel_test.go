package symexec

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/solver"
)

// parallelTestPrograms are small programs with branchy frontiers — enough
// forking that epochs actually fill and merge order matters.
var parallelTestPrograms = []struct {
	name string
	src  string
	spec *InputSpec
}{
	{
		name: "loop-assert",
		src: `
func vul_func(int a) void {
  if (a >= 3) { assert(0); }
  return;
}
func f1(int x) void {
  if (x >= 200 || x < 0) { return; }
  int i = 0;
  while (i < x) {
    vul_func(i);
    i = i + 1;
  }
  return;
}
func main() int {
  int m = input_int("sym_m");
  f1(m);
  return 0;
}`,
	},
	{
		name: "string-overflow",
		src: `
func copy_in(string s) void {
  buf dst[16];
  int i = 0;
  while (i < len(s)) {
    bufwrite(dst, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  copy_in(input_string("payload"));
  return 0;
}`,
		spec: &InputSpec{MaxStrLen: 32},
	},
	{
		name: "two-inputs-branchy",
		src: `
func check(int a, int b) void {
  if (a > 50) {
    if (b > 50) {
      if (a + b > 150) { assert(0); }
    }
  }
  return;
}
func main() int {
  int a = input_int("a");
  int b = input_int("b");
  if (a < 0 || a > 100) { return 0; }
  if (b < 0 || b > 100) { return 0; }
  check(a, b);
  return 0;
}`,
	},
}

// normalizeResult strips wall-clock fields so two Results can be compared
// structurally.
func normalizeResult(r *Result) Result {
	c := *r
	c.Elapsed = 0
	c.SolverTime = 0
	return c
}

// TestParallelEpochWorkerInvariance pins the epoch engine's core contract:
// with a fixed EpochWidth, the full Result (paths, steps, forks, solver and
// cache counters, vulnerabilities with witnesses) is a function of the
// program only — never of the worker count.
func TestParallelEpochWorkerInvariance(t *testing.T) {
	for _, tc := range parallelTestPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := bytecode.MustCompile(tc.name, tc.src)
			for _, stopFirst := range []bool{true, false} {
				var ref *Result
				for _, workers := range []int{1, 2, 4} {
					opts := DefaultOptions()
					opts.Workers = workers
					opts.StopAtFirstVuln = stopFirst
					ex := New(prog, tc.spec, opts)
					res := ex.Run()
					if res.Epochs == 0 {
						t.Fatalf("workers=%d: epoch engine did not run (Epochs=0)", workers)
					}
					if ref == nil {
						ref = res
						continue
					}
					got, want := normalizeResult(res), normalizeResult(ref)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("stopFirst=%v workers=%d diverged from workers=1:\n  got  %+v\n  want %+v",
							stopFirst, workers, got, want)
					}
				}
			}
		})
	}
}

// TestParallelEpochMatchesFreeRunVulns: the free-running mode gives up
// deterministic counters but must still find the same fault sites as the
// epoch engine when asked to exhaust the frontier.
func TestParallelEpochMatchesFreeRunVulns(t *testing.T) {
	for _, tc := range parallelTestPrograms {
		t.Run(tc.name, func(t *testing.T) {
			prog := bytecode.MustCompile(tc.name, tc.src)
			sites := func(free bool) map[string]bool {
				opts := DefaultOptions()
				opts.Workers = 4
				opts.FreeRun = free
				opts.StopAtFirstVuln = false
				res := New(prog, tc.spec, opts).Run()
				m := make(map[string]bool)
				for _, v := range res.Vulns {
					m[v.Site()] = true
				}
				return m
			}
			epoch, freeRun := sites(false), sites(true)
			if !reflect.DeepEqual(epoch, freeRun) {
				t.Errorf("fault sites diverged: epoch %v, free-run %v", epoch, freeRun)
			}
		})
	}
}

// TestParallelConcurrentForkStress hammers copy-on-write forks from many
// goroutines whose states share ancestor structure (buried frames, heap
// blocks) — the publication pattern the epoch engine relies on. Each state
// is forked by exactly one goroutine (the engine's single-owner rule; see
// frontier.go), but the forks race on the shared ancestors' refcounts and
// buffer-cell ownership. Run under -race this is the CoW thread-safety
// test: atomic frame refcounts, atomic cell owners, registry locking.
func TestParallelConcurrentForkStress(t *testing.T) {
	src := `
func main() int {
  int a = input_int("a");
  int b = input_int("b");
  buf scratch[8];
  bufwrite(scratch, 0, a);
  if (a > 10) { return 1; }
  return 0;
}`
	prog := bytecode.MustCompile("stress", src)
	opts := DefaultOptions()
	opts.Workers = 4 // parallel mode: atomic visit counters, laned vars
	ex := New(prog, nil, opts)

	// Build a shared ancestor with a frame stack and symbolic values.
	root, err := ex.initialState()
	if err != nil {
		t.Fatal(err)
	}
	x := ex.Table.NewVar("stress_x")
	const (
		goroutines = 8
		forksPer   = 200
	)
	// Single-owner handoff: fork one private lineage root per goroutine
	// sequentially (as the merge step publishes children), then let the
	// goroutines fork their own lineages concurrently — all sharing the
	// common ancestor's buried frames and heap blocks.
	roots := make([]*State, goroutines)
	for g := range roots {
		roots[g] = root.fork()
	}
	var wg sync.WaitGroup
	states := make([][]*State, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur := roots[g]
			for i := 0; i < forksPer; i++ {
				child := cur.fork()
				// Mutate the child: constraints and locals — each triggers
				// a copy-on-write of structure shared with the ancestor.
				child.AddConstraint(solver.Ge(solver.VarExpr(x), solver.ConstExpr(int64(i))))
				if fr := child.Top(); fr != nil && len(fr.Locals) > 0 {
					fr.Locals[0] = IntVal(int64(g*1000 + i))
				}
				states[g] = append(states[g], child)
				if i%3 == 0 {
					cur = child // deepen the sharing chain
				}
			}
		}(g)
	}
	wg.Wait()
	// Every forked state must still see a consistent frame stack.
	for g := range states {
		for _, st := range states[g] {
			if st.Top() == nil {
				t.Fatalf("goroutine %d produced a state with no frames", g)
			}
		}
	}
}

// TestParallelFrameReleaseStress pins the release protocol of
// ensureTopOwned: when sibling states concurrently return into a shared
// buried frame, each must finish copying the frame before publishing its
// refcount decrement — otherwise the sibling that observes refs==0 starts
// mutating the frame while a copy is still reading it (a race the guided
// pipeline hit under -race with the old decrement-then-copy order).
// Exactly one sibling may keep the original frame; everyone else works on
// a private copy that preserved the shared contents.
func TestParallelFrameReleaseStress(t *testing.T) {
	const (
		siblings = 8
		rounds   = 300
		pushes   = 64
	)
	for r := 0; r < rounds; r++ {
		shared := &Frame{PC: 7}
		for i := 0; i < 12; i++ {
			shared.Locals = append(shared.Locals, IntVal(int64(i)))
			shared.Stack = append(shared.Stack, IntVal(int64(100+i)))
		}
		baseLen := len(shared.Stack)
		shared.refs.Add(siblings - 1)

		sts := make([]*State, siblings)
		for i := range sts {
			sts[i] = &State{Status: StatusActive, Frames: []*Frame{shared}}
		}
		var wg sync.WaitGroup
		for i := range sts {
			wg.Add(1)
			go func(st *State, tag int) {
				defer wg.Done()
				st.ensureTopOwned()
				for p := 0; p < pushes; p++ {
					st.push(IntVal(int64(tag*1000 + p)))
				}
			}(sts[i], i)
		}
		wg.Wait()

		keepers := 0
		for i, st := range sts {
			fr := st.Top()
			if fr == shared {
				keepers++
			}
			if len(fr.Stack) != baseLen+pushes {
				t.Fatalf("round %d sibling %d: stack len %d, want %d", r, i, len(fr.Stack), baseLen+pushes)
			}
			for j := 0; j < baseLen; j++ {
				if c, ok := fr.Stack[j].IsConcreteInt(); !ok || c != int64(100+j) {
					t.Fatalf("round %d sibling %d: shared stack slot %d corrupted: %v", r, i, j, fr.Stack[j])
				}
			}
		}
		if keepers != 1 {
			t.Fatalf("round %d: %d siblings kept the original frame, want exactly 1", r, keepers)
		}
	}
}
