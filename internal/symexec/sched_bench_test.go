package symexec

import (
	"testing"

	"repro/internal/bytecode"
)

// linearCoverageScheduler is the pre-heap CoverageScheduler (O(n) scan per
// Next), kept verbatim as the benchmark baseline.
type linearCoverageScheduler struct {
	states []*State
	visits func(fnIndex, pc int) int64
}

func (s *linearCoverageScheduler) Name() string                               { return "coverage-linear" }
func (s *linearCoverageScheduler) Add(st *State)                              { s.states = append(s.states, st) }
func (s *linearCoverageScheduler) Len() int                                   { return len(s.states) }
func (s *linearCoverageScheduler) SetVisitFunc(f func(fnIndex, pc int) int64) { s.visits = f }

func (s *linearCoverageScheduler) Next() *State {
	n := len(s.states)
	if n == 0 {
		return nil
	}
	best := 0
	if s.visits != nil {
		var bestScore int64 = 1<<62 - 1
		for i, st := range s.states {
			fr := st.Top()
			score := s.visits(fr.Fn.Index, fr.PC)
			if score < bestScore {
				bestScore = score
				best = i
			}
		}
	}
	st := s.states[best]
	s.states[best] = s.states[n-1]
	s.states[n-1] = nil
	s.states = s.states[:n-1]
	return st
}

// coverageBenchSetup builds an n-state frontier spread over codeLen visit
// slots, with a visit profile that keeps popped entries frequently stale
// (the heap's worst realistic case: every pop may re-sift).
func coverageBenchSetup(n, codeLen int) ([]*State, []int64, func(fnIndex, pc int) int64) {
	fn := &bytecode.Fn{Index: 0, Code: make([]bytecode.Instr, codeLen)}
	states := make([]*State, n)
	visits := make([]int64, codeLen)
	for i := range states {
		states[i] = &State{Frames: []*Frame{{Fn: fn, PC: i % codeLen}}}
	}
	vf := func(fnIndex, pc int) int64 { return visits[pc] }
	return states, visits, vf
}

type coverageBenchSched interface {
	Scheduler
	SetVisitFunc(func(fnIndex, pc int) int64)
}

// runCoverageBench drains and refills the scheduler the way the executor
// does: pop the minimum, bump its instruction's visit count (staleness
// pressure), re-add. n is the steady frontier size.
func runCoverageBench(b *testing.B, mk func() coverageBenchSched, n int) {
	const codeLen = 257
	states, visits, vf := coverageBenchSetup(n, codeLen)
	s := mk()
	s.SetVisitFunc(vf)
	for _, st := range states {
		s.Add(st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := s.Next()
		if st == nil {
			b.Fatal("empty scheduler")
		}
		visits[st.Top().PC] += 3
		s.Add(st)
	}
}

func BenchmarkCoverageSchedulerNext10k(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		runCoverageBench(b, func() coverageBenchSched { return NewCoverage() }, 10_000)
	})
	b.Run("linear", func(b *testing.B) {
		runCoverageBench(b, func() coverageBenchSched { return &linearCoverageScheduler{} }, 10_000)
	})
}

func BenchmarkCoverageSchedulerNext50k(b *testing.B) {
	b.Run("heap", func(b *testing.B) {
		runCoverageBench(b, func() coverageBenchSched { return NewCoverage() }, 50_000)
	})
	b.Run("linear", func(b *testing.B) {
		runCoverageBench(b, func() coverageBenchSched { return &linearCoverageScheduler{} }, 50_000)
	})
}

// TestCoverageSchedulerPrefersLeastVisited pins the heap scheduler's
// contract: the popped state is always one whose next instruction has the
// minimum visit count, with FIFO order among equals.
func TestCoverageSchedulerPrefersLeastVisited(t *testing.T) {
	fn := &bytecode.Fn{Index: 0, Code: make([]bytecode.Instr, 8)}
	visits := []int64{5, 0, 2, 7, 0, 1, 9, 3}
	s := NewCoverage()
	s.SetVisitFunc(func(fnIndex, pc int) int64 { return visits[pc] })
	for pc := range visits {
		s.Add(&State{Frames: []*Frame{{Fn: fn, PC: pc}}})
	}
	wantOrder := []int{1, 4, 5, 2, 7, 0, 3, 6} // by count, FIFO among the two zeros
	for i, want := range wantOrder {
		st := s.Next()
		if st == nil || st.Top().PC != want {
			t.Fatalf("pop %d: got pc %v, want %d", i, st.Top().PC, want)
		}
	}
	if s.Next() != nil {
		t.Fatal("expected empty scheduler")
	}
}

// TestCoverageSchedulerStaleResift pins the lazy re-sift: a state whose
// cached key went stale (its instruction was visited after insertion) must
// not be returned ahead of a genuinely colder state.
func TestCoverageSchedulerStaleResift(t *testing.T) {
	fn := &bytecode.Fn{Index: 0, Code: make([]bytecode.Instr, 4)}
	visits := make([]int64, 4)
	s := NewCoverage()
	s.SetVisitFunc(func(fnIndex, pc int) int64 { return visits[pc] })
	a := &State{Frames: []*Frame{{Fn: fn, PC: 0}}}
	b := &State{Frames: []*Frame{{Fn: fn, PC: 1}}}
	s.Add(a) // keyed at 0
	s.Add(b) // keyed at 0
	// a's instruction heats up after insertion.
	visits[0] = 10
	if got := s.Next(); got != b {
		t.Fatalf("expected the cold state b, got pc %d", got.Top().PC)
	}
	if got := s.Next(); got != a {
		t.Fatalf("expected a second, got pc %d", got.Top().PC)
	}
}
