package symexec

import (
	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/solver"
	"repro/internal/trace"
)

// step executes one instruction of st, KLEE's
// stepInstruction/executeInstruction loop. It returns any forked children,
// whether the state was suspended by the guidance hook, and whether the
// state finished (terminated, faulted, or proven infeasible).
func (ex *Executor) step(st *State) (children []*State, suspend, done bool) {
	ex.res.Steps++
	fr := st.Top()
	ex.recordVisit(fr.Fn.Index, fr.PC)
	in := fr.Fn.Code[fr.PC]
	fr.PC++
	switch in.Op {
	case bytecode.OpNop:

	case bytecode.OpConstInt:
		st.push(IntVal(in.Imm))
	case bytecode.OpConstStr:
		st.push(StrVal(in.Str))
	case bytecode.OpLoadLocal:
		st.push(fr.Locals[in.A])
	case bytecode.OpStoreLocal:
		fr.Locals[in.A] = st.pop()
	case bytecode.OpLoadGlobal:
		st.push(st.Globals[in.A])
	case bytecode.OpStoreGlobal:
		st.ensureGlobalsOwned()
		st.Globals[in.A] = st.pop()
	case bytecode.OpNewBuf:
		fr.Locals[in.A] = BufVal(NewSymBuffer(in.B))

	case bytecode.OpNeg:
		v := st.pop()
		st.push(LinVal(v.Lin.Neg()))
	case bytecode.OpNot:
		v := st.pop()
		if c, ok := v.IsConcreteInt(); ok {
			if c == 0 {
				st.push(IntVal(1))
			} else {
				st.push(IntVal(0))
			}
			break
		}
		// !x is the comparison x == 0.
		return ex.pushBool(st, solver.Constraint{E: v.Lin, Op: solver.OpEq})

	case bytecode.OpBin:
		return ex.stepBin(st, minic.BinOp(in.A), in.Pos)

	case bytecode.OpJump:
		fr.PC = in.A
	case bytecode.OpJumpZ, bytecode.OpJumpNZ:
		return ex.stepJump(st, in)

	case bytecode.OpCall:
		callee := ex.Prog.Funcs[in.A]
		if len(st.Frames) >= ex.Opts.MaxDepth {
			// Depth exhaustion cuts the path (KLEE would keep unrolling; our
			// apps are not deeply recursive) — recorded under its own status
			// and counter so truncation is distinguishable from normal exit.
			st.Status = StatusDepthExhausted
			ex.res.DepthExhausted++
			return nil, false, true
		}
		args := make([]Value, in.B)
		for i := in.B - 1; i >= 0; i-- {
			args[i] = st.pop()
		}
		if s := ex.Opts.Calls; s != nil {
			children, suspend, done, handled := s.OnCall(ex, st, callee, args)
			if handled {
				return children, suspend, done
			}
		}
		nf := &Frame{Fn: callee, Locals: make([]Value, callee.NumLocals)}
		copy(nf.Locals, args)
		st.Frames = append(st.Frames, nf)
		dec := ex.fireLocation(st, trace.Location{Func: callee.Name, Kind: trace.EventEnter}, nil)
		if dec == HookSuspend {
			return nil, true, false
		}

	case bytecode.OpReturn:
		var ret Value
		var retPtr *Value
		if in.A == 1 {
			ret = st.pop()
			retPtr = &ret
		}
		fnName := fr.Fn.Name
		if fnName != bytecode.InitFuncName {
			dec := ex.fireLocation(st, trace.Location{Func: fnName, Kind: trace.EventLeave}, retPtr)
			if dec == HookSuspend {
				// Complete the return first so the state resumes cleanly.
				st.Frames = st.Frames[:len(st.Frames)-1]
				if len(st.Frames) == 0 {
					st.Status = StatusTerminated
					return nil, false, true
				}
				st.ensureTopOwned()
				if retPtr != nil {
					st.push(ret)
				}
				return nil, true, false
			}
		}
		st.Frames = st.Frames[:len(st.Frames)-1]
		if len(st.Frames) == 0 {
			st.Status = StatusTerminated
			return nil, false, true
		}
		st.ensureTopOwned()
		if retPtr != nil {
			st.push(ret)
		}

	case bytecode.OpBuiltin:
		return ex.stepBuiltin(st, minic.Builtin(in.A), in.B, in.Pos)

	case bytecode.OpPop:
		st.pop()
	}
	return nil, false, false
}

// pushBool delivers a comparison outcome. When the next instruction is a
// conditional jump the constraint is deferred (the jump forks); otherwise
// the state forks now: the current state takes the true branch (value 1),
// the child takes the false branch (value 0).
func (ex *Executor) pushBool(st *State, c solver.Constraint) (children []*State, suspend, done bool) {
	fr := st.Top()
	if fr.PC < len(fr.Fn.Code) {
		next := fr.Fn.Code[fr.PC].Op
		if next == bytecode.OpJumpZ || next == bytecode.OpJumpNZ {
			st.push(CondVal(c))
			return nil, false, false
		}
	}
	neg := c.Negate()
	okT, mT := ex.satisfiable(st, c)
	okF, mF := ex.satisfiable(st, neg)
	switch {
	case okT && okF:
		// Model-directed forking: the current state follows the branch
		// its cached model already satisfies (cheap, and lets seeded
		// models steer exploration); the fork child takes the other side.
		child := st.fork()
		if st.LastModel != nil && neg.Holds(st.LastModel) {
			ex.commit(child, mT, c)
			child.push(IntVal(1))
			child.Depth++
			ex.commit(st, mF, neg)
			st.push(IntVal(0))
		} else {
			ex.commit(child, mF, neg)
			child.push(IntVal(0))
			child.Depth++
			ex.commit(st, mT, c)
			st.push(IntVal(1))
		}
		st.Depth++
		ex.res.Forks++
		return []*State{child}, false, false
	case okT:
		ex.commit(st, mT, c)
		st.push(IntVal(1))
	case okF:
		ex.commit(st, mF, neg)
		st.push(IntVal(0))
	default:
		st.Status = StatusInfeasible
		return nil, false, true
	}
	return nil, false, false
}

// stepJump handles OpJumpZ/OpJumpNZ, the fork point of the engine.
func (ex *Executor) stepJump(st *State, in bytecode.Instr) (children []*State, suspend, done bool) {
	fr := st.Top()
	v := st.pop()
	if c, ok := v.IsConcreteInt(); ok {
		isZero := c == 0
		if (in.Op == bytecode.OpJumpZ && isZero) || (in.Op == bytecode.OpJumpNZ && !isZero) {
			fr.PC = in.A
		}
		return nil, false, false
	}
	// Symbolic condition: nonZero is the constraint for "value != 0".
	var nonZero solver.Constraint
	if v.IsCond {
		nonZero = v.Cond
	} else {
		nonZero = solver.Constraint{E: v.Lin, Op: solver.OpNe}
	}
	zero := nonZero.Negate()

	// For JumpZ: fall-through ⇔ value != 0; jump ⇔ value == 0.
	// For JumpNZ the roles swap.
	stayCond, jumpCond := nonZero, zero
	if in.Op == bytecode.OpJumpNZ {
		stayCond, jumpCond = zero, nonZero
	}
	okStay, mStay := ex.satisfiable(st, stayCond)
	okJump, mJump := ex.satisfiable(st, jumpCond)
	switch {
	case okStay && okJump:
		// Model-directed forking (see pushBool): the current state takes
		// the direction its cached model satisfies.
		child := st.fork()
		if st.LastModel != nil && jumpCond.Holds(st.LastModel) {
			ex.commit(child, mStay, stayCond)
			child.Depth++
			ex.commit(st, mJump, jumpCond)
			fr.PC = in.A
		} else {
			ex.commit(child, mJump, jumpCond)
			child.Top().PC = in.A
			child.Depth++
			ex.commit(st, mStay, stayCond)
		}
		st.Depth++
		ex.res.Forks++
		return []*State{child}, false, false
	case okStay:
		ex.commit(st, mStay, stayCond)
	case okJump:
		ex.commit(st, mJump, jumpCond)
		fr.PC = in.A
	default:
		st.Status = StatusInfeasible
		return nil, false, true
	}
	return nil, false, false
}

// stepBin implements OpBin over symbolic values.
func (ex *Executor) stepBin(st *State, op minic.BinOp, pos minic.Pos) (children []*State, suspend, done bool) {
	r := st.pop()
	l := st.pop()

	// String operations.
	if l.Kind == KindString || r.Kind == KindString {
		switch op {
		case minic.OpAdd:
			st.push(ex.concatStrings(st, l.Str, r.Str))
			return nil, false, false
		case minic.OpEq:
			return ex.stringEq(st, l.Str, r.Str, 1, 0)
		case minic.OpNeq:
			return ex.stringEq(st, l.Str, r.Str, 0, 1)
		}
		return nil, false, false
	}

	lc, lok := l.IsConcreteInt()
	rc, rok := r.IsConcreteInt()

	switch op {
	case minic.OpAdd:
		st.push(LinVal(l.Lin.Add(r.Lin)))
	case minic.OpSub:
		st.push(LinVal(l.Lin.Sub(r.Lin)))
	case minic.OpMul:
		switch {
		case lok:
			st.push(LinVal(r.Lin.MulConst(lc)))
		case rok:
			st.push(LinVal(l.Lin.MulConst(rc)))
		default:
			// Nonlinear product: over-approximate with a fresh variable,
			// keeping the cached model consistent.
			fresh := ex.newVar("mul")
			if st.LastModel != nil {
				ex.extendModel(st, fresh, l.Lin.Eval(st.LastModel)*r.Lin.Eval(st.LastModel))
			}
			st.push(LinVal(solver.VarExpr(fresh)))
		}
	case minic.OpDiv, minic.OpMod:
		return ex.stepDivMod(st, op, l, r, pos)
	case minic.OpEq, minic.OpNeq, minic.OpLt, minic.OpLe, minic.OpGt, minic.OpGe:
		if lok && rok {
			st.push(IntVal(boolToInt(concreteCompare(op, lc, rc))))
			return nil, false, false
		}
		return ex.pushBool(st, compareConstraint(op, l.Lin, r.Lin))
	}
	return nil, false, false
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func concreteCompare(op minic.BinOp, a, b int64) bool {
	switch op {
	case minic.OpEq:
		return a == b
	case minic.OpNeq:
		return a != b
	case minic.OpLt:
		return a < b
	case minic.OpLe:
		return a <= b
	case minic.OpGt:
		return a > b
	case minic.OpGe:
		return a >= b
	}
	return false
}

func compareConstraint(op minic.BinOp, a, b solver.LinExpr) solver.Constraint {
	switch op {
	case minic.OpEq:
		return solver.Eq(a, b)
	case minic.OpNeq:
		return solver.Ne(a, b)
	case minic.OpLt:
		return solver.Lt(a, b)
	case minic.OpLe:
		return solver.Le(a, b)
	case minic.OpGt:
		return solver.Gt(a, b)
	default:
		return solver.Ge(a, b)
	}
}

// stepDivMod implements division and modulo. A constant positive divisor is
// modeled exactly with auxiliary quotient/remainder variables; a symbolic
// divisor triggers the division-by-zero oracle.
func (ex *Executor) stepDivMod(st *State, op minic.BinOp, l, r Value, pos minic.Pos) (children []*State, suspend, done bool) {
	lc, lok := l.IsConcreteInt()
	rc, rok := r.IsConcreteInt()
	if rok && rc == 0 {
		// Definite division by zero on this path.
		ok, m := ex.satisfiable(st)
		if ok {
			ex.report(st, interp.FaultDivZero, pos, m)
		}
		st.Status = StatusFaulted
		return nil, false, true
	}
	if lok && rok {
		if op == minic.OpDiv {
			st.push(IntVal(lc / rc))
		} else {
			st.push(IntVal(lc % rc))
		}
		return nil, false, false
	}
	if !rok {
		// Symbolic divisor: can it be zero?
		zero := solver.Constraint{E: r.Lin, Op: solver.OpEq}
		if ok, m := ex.satisfiable(st, zero); ok {
			ex.report(st, interp.FaultDivZero, pos, m, zero)
			if ex.stopped {
				return nil, false, false
			}
		}
		nz := zero.Negate()
		ok, m := ex.satisfiable(st, nz)
		if !ok {
			st.Status = StatusInfeasible
			return nil, false, true
		}
		ex.commit(st, m, nz)
		// Result over-approximated by a fresh variable.
		fresh := ex.newVar("divres")
		if st.LastModel != nil {
			den := r.Lin.Eval(st.LastModel)
			if den != 0 {
				num := l.Lin.Eval(st.LastModel)
				if op == minic.OpDiv {
					ex.extendModel(st, fresh, num/den)
				} else {
					ex.extendModel(st, fresh, num%den)
				}
			}
		}
		st.push(LinVal(solver.VarExpr(fresh)))
		return nil, false, false
	}
	// Symbolic dividend, constant divisor.
	if rc < 0 {
		// Rare in the evaluation programs; over-approximate.
		fresh := ex.newVar("divneg")
		st.push(LinVal(solver.VarExpr(fresh)))
		return nil, false, false
	}
	// l = q*rc + rem with 0 ≤ rem < rc (exact for non-negative dividends;
	// MiniC programs use non-negative operands with / and %).
	q := ex.newVar("q")
	rem := ex.newVarBounded("r", 0, rc-1)
	def := solver.Eq(l.Lin, solver.VarExpr(q).MulConst(rc).Add(solver.VarExpr(rem)))
	addPathConstraint(st, def)
	if st.LastModel != nil {
		lv := l.Lin.Eval(st.LastModel)
		qv := lv / rc
		rv := lv % rc
		if rv < 0 { // floor adjustment
			qv--
			rv += rc
		}
		nm := make(solver.Model, len(st.LastModel)+2)
		for k, v := range st.LastModel {
			nm[k] = v
		}
		nm[q] = qv
		nm[rem] = rv
		st.LastModel = nm
	}
	if op == minic.OpDiv {
		st.push(LinVal(solver.VarExpr(q)))
	} else {
		st.push(LinVal(solver.VarExpr(rem)))
	}
	return nil, false, false
}

// concatStrings implements string concatenation; symbolic operands yield a
// fresh symbolic string whose length is constrained to the sum.
func (ex *Executor) concatStrings(st *State, a, b *SymString) Value {
	if a.IsLit && b.IsLit {
		return StrVal(a.Lit + b.Lit)
	}
	maxLen := ex.strMaxLen(a) + ex.strMaxLen(b)
	out := ex.freshStr("concat", maxLen)
	sum := a.LenExpr().Add(b.LenExpr())
	addPathConstraint(st, solver.Eq(solver.VarExpr(out.LenVar), sum))
	if st.LastModel != nil {
		ex.extendModel(st, out.LenVar, sum.Eval(st.LastModel))
	}
	return SymStrVal(out)
}

// strMaxLen returns an upper bound for a string's length.
func (ex *Executor) strMaxLen(s *SymString) int64 {
	if s.IsLit {
		return int64(len(s.Lit))
	}
	info := ex.Table.Info(s.LenVar)
	if info.HasHi {
		return info.Hi
	}
	return DefaultMaxStrLen
}

// stringEq forks on string equality. The equal branch receives length (and,
// when one side is concrete, byte) constraints; the not-equal branch keeps
// the original path condition (a sound over-approximation for bug search).
func (ex *Executor) stringEq(st *State, a, b *SymString, eqVal, neqVal int64) (children []*State, suspend, done bool) {
	if a.IsLit && b.IsLit {
		if a.Lit == b.Lit {
			st.push(IntVal(eqVal))
		} else {
			st.push(IntVal(neqVal))
		}
		return nil, false, false
	}
	eqCons := []solver.Constraint{solver.Eq(a.LenExpr(), b.LenExpr())}
	// Byte constraints when one side is a literal.
	sym, lit := a, b
	if a.IsLit {
		sym, lit = b, a
	}
	if lit.IsLit && !sym.IsLit {
		n := len(lit.Lit)
		if sym.ByteStride != 0 && n > sym.ByteLen {
			// Literal longer than the symbolic string can ever be: the
			// length-equality constraint above is already unsatisfiable
			// against LenVar's upper bound, so the surplus byte constraints
			// are redundant — skip them rather than allocate out-of-block
			// byte variables through the nondeterministic overflow path.
			n = sym.ByteLen
		}
		for i := 0; i < n; i++ {
			bv := ex.inputs.byteVar(sym, int64(i))
			if sb, ok := ex.inputs.seededByte(sym.ID, int64(i)); ok {
				ex.seedModelValue(st, bv, sb)
			}
			eqCons = append(eqCons, solver.Eq(solver.VarExpr(bv), solver.ConstExpr(int64(lit.Lit[i]))))
		}
	}
	okEq, mEq := ex.satisfiable(st, eqCons...)
	if !okEq {
		st.push(IntVal(neqVal))
		return nil, false, false
	}
	// Fork, model-directed: when the cached model already satisfies the
	// equality (e.g. a seeded input took this branch), the current state
	// takes the equal side; otherwise it takes not-equal.
	child := st.fork()
	if st.LastModel != nil && allHold(eqCons, st.LastModel) {
		child.push(IntVal(neqVal))
		child.Depth++
		ex.commit(st, mEq, eqCons...)
		st.push(IntVal(eqVal))
	} else {
		ex.commit(child, mEq, eqCons...)
		child.push(IntVal(eqVal))
		child.Depth++
		st.push(IntVal(neqVal))
	}
	st.Depth++
	ex.res.Forks++
	return []*State{child}, false, false
}
