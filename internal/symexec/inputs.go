package symexec

import (
	"fmt"
	"sort"

	"repro/internal/interp"
	"repro/internal/solver"
)

// InputSpec configures the program's symbolic environment, the analogue of
// KLEE's symbolic-argument setup. The paper notes (§VII-A) that both
// StatSym and KLEE are configured with "semantically reasonable and
// required program input options": fixed option strings stay concrete,
// payload inputs become symbolic with a declared maximum size.
type InputSpec struct {
	// MaxStrLen bounds symbolic string lengths (KLEE's symbolic size).
	// Zero means DefaultMaxStrLen.
	MaxStrLen int64
	// StrLenMax overrides MaxStrLen per input channel name.
	StrLenMax map[string]int64

	// IntMin/IntMax bound symbolic integers; both zero means
	// [DefaultIntMin, DefaultIntMax].
	IntMin, IntMax int64

	// Concrete values: channels listed here are not symbolic.
	ConcreteInts map[string]int64
	ConcreteStrs map[string]string
	ConcreteEnv  map[string]string

	// Args configures command-line arguments; NArgs is the argument count
	// reported by nargs(). Argument i is concrete when ConcreteArgs[i] is
	// set, otherwise symbolic.
	NArgs        int
	ConcreteArgs map[int]string

	// SeedInput, when set, biases exploration toward the concrete path
	// this input takes: as symbolic channels register, the seed's values
	// are installed into the state's cached model, so branch decisions
	// consistent with the seed are taken without solver queries and the
	// seeded path is explored first. This is the failure-replay mode of
	// BugRedux-style reproduction (the paper's ref [20]): given a crashing
	// field input, the engine re-derives its path and constraints
	// directly. Inputs remain fully symbolic — only the search order
	// changes.
	SeedInput *interp.Input
}

// Default symbolic-input bounds.
const (
	DefaultMaxStrLen = 64
	DefaultIntMin    = -(1 << 31)
	DefaultIntMax    = 1 << 31
)

func (s *InputSpec) strLenMax(name string) int64 {
	if s != nil && s.StrLenMax != nil {
		if v, ok := s.StrLenMax[name]; ok {
			return v
		}
	}
	if s != nil && s.MaxStrLen > 0 {
		return s.MaxStrLen
	}
	return DefaultMaxStrLen
}

func (s *InputSpec) intBounds() (int64, int64) {
	if s == nil || (s.IntMin == 0 && s.IntMax == 0) {
		return DefaultIntMin, DefaultIntMax
	}
	return s.IntMin, s.IntMax
}

// channelClass distinguishes the four input channels.
type channelClass int

const (
	chanInt channelClass = iota + 1
	chanStr
	chanEnv
	chanArg
)

type byteKey struct {
	strID int
	idx   int64
}

// inputRegistry allocates solver variables for symbolic inputs. It is
// shared by all states (as with KLEE's make_symbolic, the same named input
// denotes the same symbolic object on every path) and materializes string
// byte variables lazily with deterministic identity.
type inputRegistry struct {
	table *solver.VarTable
	spec  *InputSpec

	ints map[string]solver.Var
	strs map[string]*SymString // keyed "s:<name>", "e:<name>", "a:<idx>"

	bytes     map[byteKey]solver.Var
	nextStrID int

	// Registration order for deterministic witness construction.
	intOrder []string
	strOrder []string

	// seedStrs maps a seeded symbolic string's ID to the seed value, so
	// byte variables can be seeded as they materialize.
	seedStrs map[int]string
}

// seedValue returns the seed's value for a channel, if seeding is active.
func (r *inputRegistry) seedInt(name string) (int64, bool) {
	s := r.spec.SeedInput
	if s == nil || s.Ints == nil {
		return 0, false
	}
	v, ok := s.Ints[name]
	return v, ok
}

func (r *inputRegistry) seedStr(kind byte, name string, argIdx int64) (string, bool) {
	s := r.spec.SeedInput
	if s == nil {
		return "", false
	}
	switch kind {
	case 's':
		v, ok := s.Strs[name]
		return v, ok
	case 'e':
		v, ok := s.Env[name]
		return v, ok
	case 'a':
		if argIdx >= 0 && argIdx < int64(len(s.Args)) {
			return s.Args[argIdx], true
		}
	}
	return "", false
}

// noteSeedStr records the seed value for a symbolic string.
func (r *inputRegistry) noteSeedStr(id int, val string) {
	if r.seedStrs == nil {
		r.seedStrs = make(map[int]string)
	}
	r.seedStrs[id] = val
}

// seededByte returns the seed byte for (string, index), if any.
func (r *inputRegistry) seededByte(id int, idx int64) (int64, bool) {
	v, ok := r.seedStrs[id]
	if !ok || idx < 0 || idx >= int64(len(v)) {
		return 0, false
	}
	return int64(v[idx]), true
}

func newInputRegistry(table *solver.VarTable, spec *InputSpec) *inputRegistry {
	if spec == nil {
		spec = &InputSpec{}
	}
	return &inputRegistry{
		table: table,
		spec:  spec,
		ints:  make(map[string]solver.Var),
		strs:  make(map[string]*SymString),
		bytes: make(map[byteKey]solver.Var),
	}
}

// intInput returns the value of input_int(name).
func (r *inputRegistry) intInput(name string) Value {
	if v, ok := r.spec.ConcreteInts[name]; ok {
		return IntVal(v)
	}
	if v, ok := r.ints[name]; ok {
		return LinVal(solver.VarExpr(v))
	}
	lo, hi := r.spec.intBounds()
	v := r.table.NewVarBounded("sym_"+name, lo, hi)
	r.ints[name] = v
	r.intOrder = append(r.intOrder, name)
	return LinVal(solver.VarExpr(v))
}

// strInput returns the value of input_string(name).
func (r *inputRegistry) strInput(name string) Value {
	if v, ok := r.spec.ConcreteStrs[name]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr("s:"+name, name))
}

// envInput returns the value of env(name).
func (r *inputRegistry) envInput(name string) Value {
	if v, ok := r.spec.ConcreteEnv[name]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr("e:"+name, name))
}

// argInput returns the value of arg(i) for concrete i.
func (r *inputRegistry) argInput(i int64) Value {
	if i < 0 || i >= int64(r.spec.NArgs) {
		return StrVal("")
	}
	if v, ok := r.spec.ConcreteArgs[int(i)]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr(fmt.Sprintf("a:%d", i), fmt.Sprintf("arg%d", i)))
}

// symStr returns (creating on first use) the symbolic string for a channel
// key.
func (r *inputRegistry) symStr(key, label string) *SymString {
	if s, ok := r.strs[key]; ok {
		return s
	}
	r.nextStrID++
	s := &SymString{
		ID:     r.nextStrID,
		Label:  label,
		LenVar: r.table.NewVarBounded("len("+label+")", 0, r.spec.strLenMax(label)),
	}
	r.strs[key] = s
	r.strOrder = append(r.strOrder, key)
	return s
}

// freshStr allocates an anonymous symbolic string (results of concat,
// substr, atoi-style approximations). It is not an input channel and does
// not appear in witnesses.
func (r *inputRegistry) freshStr(label string, maxLen int64) *SymString {
	r.nextStrID++
	return &SymString{
		ID:     r.nextStrID,
		Label:  label,
		LenVar: r.table.NewVarBounded("len("+label+")", 0, maxLen),
	}
}

// byteVar returns the solver variable for s[idx], materializing it on first
// use. Identity is deterministic per (string, index).
func (r *inputRegistry) byteVar(s *SymString, idx int64) solver.Var {
	key := byteKey{strID: s.ID, idx: idx}
	if v, ok := r.bytes[key]; ok {
		return v
	}
	v := r.table.NewVarBounded(fmt.Sprintf("%s[%d]", s.Label, idx), 0, 255)
	r.bytes[key] = v
	return v
}

// defaultWitnessByte fills unconstrained positions of witness strings.
const defaultWitnessByte = 'a'

// witness converts a solver model into a concrete program input that
// steers the concrete VM down the discovered path.
func (r *inputRegistry) witness(m solver.Model) *interp.Input {
	in := &interp.Input{
		Ints: make(map[string]int64),
		Strs: make(map[string]string),
		Env:  make(map[string]string),
	}
	for name, v := range r.spec.ConcreteInts {
		in.Ints[name] = v
	}
	for name, v := range r.spec.ConcreteStrs {
		in.Strs[name] = v
	}
	for name, v := range r.spec.ConcreteEnv {
		in.Env[name] = v
	}
	for _, name := range r.intOrder {
		if v, ok := m[r.ints[name]]; ok {
			in.Ints[name] = v
		} else {
			in.Ints[name] = 0
		}
	}
	for _, key := range r.strOrder {
		s := r.strs[key]
		str := r.materialize(s, m)
		switch key[0] {
		case 's':
			in.Strs[s.Label] = str
		case 'e':
			in.Env[s.Label] = str
		}
	}
	// Arguments: assemble the full argv.
	if r.spec.NArgs > 0 {
		in.Args = make([]string, r.spec.NArgs)
		for i := 0; i < r.spec.NArgs; i++ {
			if v, ok := r.spec.ConcreteArgs[i]; ok {
				in.Args[i] = v
				continue
			}
			if s, ok := r.strs[fmt.Sprintf("a:%d", i)]; ok {
				in.Args[i] = r.materialize(s, m)
			}
		}
	}
	return in
}

// materialize renders a symbolic string under a model: length from the
// model (0 when unconstrained), bytes from materialized byte variables,
// filler elsewhere.
func (r *inputRegistry) materialize(s *SymString, m solver.Model) string {
	if s.IsLit {
		return s.Lit
	}
	length, ok := m[s.LenVar]
	if !ok {
		length = 0
	}
	if length < 0 {
		length = 0
	}
	const maxWitnessLen = 1 << 20
	if length > maxWitnessLen {
		length = maxWitnessLen
	}
	buf := make([]byte, length)
	for i := int64(0); i < length; i++ {
		b := byte(defaultWitnessByte)
		if v, ok := r.bytes[byteKey{strID: s.ID, idx: i}]; ok {
			if mv, ok := m[v]; ok && mv >= 0 && mv <= 255 {
				b = byte(mv)
			}
		}
		buf[i] = b
	}
	return string(buf)
}

// symbolicInputNames lists the registered symbolic channels (for reports).
func (r *inputRegistry) symbolicInputNames() []string {
	names := make([]string, 0, len(r.intOrder)+len(r.strOrder))
	names = append(names, r.intOrder...)
	for _, key := range r.strOrder {
		names = append(names, r.strs[key].Label)
	}
	sort.Strings(names)
	return names
}
