package symexec

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/solver"
)

// InputSpec configures the program's symbolic environment, the analogue of
// KLEE's symbolic-argument setup. The paper notes (§VII-A) that both
// StatSym and KLEE are configured with "semantically reasonable and
// required program input options": fixed option strings stay concrete,
// payload inputs become symbolic with a declared maximum size.
type InputSpec struct {
	// MaxStrLen bounds symbolic string lengths (KLEE's symbolic size).
	// Zero means DefaultMaxStrLen.
	MaxStrLen int64
	// StrLenMax overrides MaxStrLen per input channel name.
	StrLenMax map[string]int64

	// IntMin/IntMax bound symbolic integers; both zero means
	// [DefaultIntMin, DefaultIntMax].
	IntMin, IntMax int64

	// Concrete values: channels listed here are not symbolic.
	ConcreteInts map[string]int64
	ConcreteStrs map[string]string
	ConcreteEnv  map[string]string

	// Args configures command-line arguments; NArgs is the argument count
	// reported by nargs(). Argument i is concrete when ConcreteArgs[i] is
	// set, otherwise symbolic.
	NArgs        int
	ConcreteArgs map[int]string

	// SeedInput, when set, biases exploration toward the concrete path
	// this input takes: as symbolic channels register, the seed's values
	// are installed into the state's cached model, so branch decisions
	// consistent with the seed are taken without solver queries and the
	// seeded path is explored first. This is the failure-replay mode of
	// BugRedux-style reproduction (the paper's ref [20]): given a crashing
	// field input, the engine re-derives its path and constraints
	// directly. Inputs remain fully symbolic — only the search order
	// changes.
	SeedInput *interp.Input
}

// Default symbolic-input bounds.
const (
	DefaultMaxStrLen = 64
	DefaultIntMin    = -(1 << 31)
	DefaultIntMax    = 1 << 31
)

func (s *InputSpec) strLenMax(name string) int64 {
	if s != nil && s.StrLenMax != nil {
		if v, ok := s.StrLenMax[name]; ok {
			return v
		}
	}
	if s != nil && s.MaxStrLen > 0 {
		return s.MaxStrLen
	}
	return DefaultMaxStrLen
}

func (s *InputSpec) intBounds() (int64, int64) {
	if s == nil || (s.IntMin == 0 && s.IntMax == 0) {
		return DefaultIntMin, DefaultIntMax
	}
	return s.IntMin, s.IntMax
}

// channelClass distinguishes the four input channels.
type channelClass int

const (
	chanInt channelClass = iota + 1
	chanStr
	chanEnv
	chanArg
)

type byteKey struct {
	strID int
	idx   int64
}

// inputRegistry allocates solver variables for symbolic inputs. It is
// shared by all states (as with KLEE's make_symbolic, the same named input
// denotes the same symbolic object on every path) and materializes string
// byte variables lazily with deterministic identity.
//
// The registry is safe for concurrent use — all map accesses go through mu.
// Under the parallel frontier engine determinism additionally requires that
// variable IDs not depend on which worker registers a channel first; the
// engine arranges that by prescanning the bytecode for literal channel
// names (see prescan) and by reserving byte-variable blocks per string
// (SymString.ByteBase) so lazily touched bytes have pre-assigned IDs.
type inputRegistry struct {
	table *solver.VarTable
	spec  *InputSpec

	mu sync.RWMutex

	// overflow, when set (parallel mode), allocates variables for channels
	// and bytes that escaped the prescan/byte blocks — computed channel
	// names, out-of-block byte indexes. Such late allocations are ordered
	// by the registry lock, not by the epoch schedule, so they are the one
	// place parallel runs may diverge; none of the bundled apps hits it.
	// nil means allocate densely from the table (the sequential engine).
	overflow solver.VarAllocator
	// blocks enables byte-block reservation for newly created strings.
	blocks bool

	ints map[string]solver.Var
	strs map[string]*SymString // keyed "s:<name>", "e:<name>", "a:<idx>"

	bytes     map[byteKey]solver.Var
	nextStrID int

	// Registration order for deterministic witness construction.
	intOrder []string
	strOrder []string

	// seedStrs maps a seeded symbolic string's ID to the seed value, so
	// byte variables can be seeded as they materialize.
	seedStrs map[int]string
}

// allocLocked returns the allocator for late registrations; caller holds mu.
func (r *inputRegistry) allocLocked() solver.VarAllocator {
	if r.overflow != nil {
		return r.overflow
	}
	return r.table
}

// prescan walks the bytecode for input builtins whose channel name is a
// string literal (it always is in MiniC source) and registers those
// channels — plus every argv slot — before execution begins, so channel
// variable IDs are fixed by program text rather than by which worker
// executes an input call first.
func (r *inputRegistry) prescan(prog *bytecode.Program) {
	for _, fn := range prog.Funcs {
		for i := 0; i+1 < len(fn.Code); i++ {
			if fn.Code[i].Op != bytecode.OpConstStr ||
				fn.Code[i+1].Op != bytecode.OpBuiltin || fn.Code[i+1].B != 1 {
				continue
			}
			name := fn.Code[i].Str
			switch minic.Builtin(fn.Code[i+1].A) {
			case minic.BuiltinInputInt:
				r.intInput(name)
			case minic.BuiltinInputString:
				r.strInput(name)
			case minic.BuiltinEnv:
				r.envInput(name)
			}
		}
	}
	for i := 0; i < r.spec.NArgs; i++ {
		r.argInput(int64(i))
	}
}

// seedValue returns the seed's value for a channel, if seeding is active.
func (r *inputRegistry) seedInt(name string) (int64, bool) {
	s := r.spec.SeedInput
	if s == nil || s.Ints == nil {
		return 0, false
	}
	v, ok := s.Ints[name]
	return v, ok
}

func (r *inputRegistry) seedStr(kind byte, name string, argIdx int64) (string, bool) {
	s := r.spec.SeedInput
	if s == nil {
		return "", false
	}
	switch kind {
	case 's':
		v, ok := s.Strs[name]
		return v, ok
	case 'e':
		v, ok := s.Env[name]
		return v, ok
	case 'a':
		if argIdx >= 0 && argIdx < int64(len(s.Args)) {
			return s.Args[argIdx], true
		}
	}
	return "", false
}

// noteSeedStr records the seed value for a symbolic string.
func (r *inputRegistry) noteSeedStr(id int, val string) {
	r.mu.Lock()
	if r.seedStrs == nil {
		r.seedStrs = make(map[int]string)
	}
	r.seedStrs[id] = val
	r.mu.Unlock()
}

// seededByte returns the seed byte for (string, index), if any.
func (r *inputRegistry) seededByte(id int, idx int64) (int64, bool) {
	r.mu.RLock()
	v, ok := r.seedStrs[id]
	r.mu.RUnlock()
	if !ok || idx < 0 || idx >= int64(len(v)) {
		return 0, false
	}
	return int64(v[idx]), true
}

func newInputRegistry(table *solver.VarTable, spec *InputSpec) *inputRegistry {
	if spec == nil {
		spec = &InputSpec{}
	}
	return &inputRegistry{
		table: table,
		spec:  spec,
		ints:  make(map[string]solver.Var),
		strs:  make(map[string]*SymString),
		bytes: make(map[byteKey]solver.Var),
	}
}

// intInput returns the value of input_int(name).
func (r *inputRegistry) intInput(name string) Value {
	if v, ok := r.spec.ConcreteInts[name]; ok {
		return IntVal(v)
	}
	r.mu.RLock()
	v, ok := r.ints[name]
	r.mu.RUnlock()
	if ok {
		return LinVal(solver.VarExpr(v))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.ints[name]; ok {
		return LinVal(solver.VarExpr(v))
	}
	lo, hi := r.spec.intBounds()
	v = r.allocLocked().NewVarBounded("sym_"+name, lo, hi)
	r.ints[name] = v
	r.intOrder = append(r.intOrder, name)
	return LinVal(solver.VarExpr(v))
}

// strInput returns the value of input_string(name).
func (r *inputRegistry) strInput(name string) Value {
	if v, ok := r.spec.ConcreteStrs[name]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr("s:"+name, name))
}

// envInput returns the value of env(name).
func (r *inputRegistry) envInput(name string) Value {
	if v, ok := r.spec.ConcreteEnv[name]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr("e:"+name, name))
}

// argInput returns the value of arg(i) for concrete i.
func (r *inputRegistry) argInput(i int64) Value {
	if i < 0 || i >= int64(r.spec.NArgs) {
		return StrVal("")
	}
	if v, ok := r.spec.ConcreteArgs[int(i)]; ok {
		return StrVal(v)
	}
	return SymStrVal(r.symStr(fmt.Sprintf("a:%d", i), fmt.Sprintf("arg%d", i)))
}

// symStr returns (creating on first use) the symbolic string for a channel
// key.
func (r *inputRegistry) symStr(key, label string) *SymString {
	r.mu.RLock()
	s, ok := r.strs[key]
	r.mu.RUnlock()
	if ok {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.strs[key]; ok {
		return s
	}
	s = r.newStrLocked(r.allocLocked(), label, r.spec.strLenMax(label))
	r.strs[key] = s
	r.strOrder = append(r.strOrder, key)
	return s
}

// newStrLocked builds a symbolic string, reserving its byte-variable block
// when blocks are enabled. Caller holds mu (for nextStrID).
func (r *inputRegistry) newStrLocked(al solver.VarAllocator, label string, maxLen int64) *SymString {
	r.nextStrID++
	s := &SymString{
		ID:     r.nextStrID,
		Label:  label,
		LenVar: al.NewVarBounded("len("+label+")", 0, maxLen),
	}
	if r.blocks && maxLen > 0 {
		// A string's length never exceeds maxLen, so indexes 0..maxLen-1
		// cover every in-bounds byte. (Out-of-range probes fall back to the
		// locked overflow path in byteVar.)
		s.ByteBase, s.ByteStride = al.Reserve(int(maxLen), solver.VarInfo{
			Name: label, HasLo: true, HasHi: true, Lo: 0, Hi: 255,
		})
		s.ByteLen = int(maxLen)
	}
	return s
}

// freshStr allocates an anonymous symbolic string (results of concat,
// substr, atoi-style approximations). It is not an input channel and does
// not appear in witnesses. al chooses where its variables come from: the
// sequential engine passes the dense table, parallel workers their own
// lane.
func (r *inputRegistry) freshStr(al solver.VarAllocator, label string, maxLen int64) *SymString {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.newStrLocked(al, label, maxLen)
}

// byteVar returns the solver variable for s[idx], materializing it on first
// use. Identity is deterministic per (string, index).
func (r *inputRegistry) byteVar(s *SymString, idx int64) solver.Var {
	if s.ByteStride != 0 && idx >= 0 && idx < int64(s.ByteLen) {
		// Pure arithmetic: the block's metadata (bounds, indexed name) was
		// registered once at Reserve time, so first and repeat accesses
		// alike touch no table state.
		return s.ByteBase + solver.Var(int32(idx)*s.ByteStride)
	}
	key := byteKey{strID: s.ID, idx: idx}
	r.mu.RLock()
	v, ok := r.bytes[key]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.bytes[key]; ok {
		return v
	}
	v = r.allocLocked().NewVarBounded(fmt.Sprintf("%s[%d]", s.Label, idx), 0, 255)
	r.bytes[key] = v
	return v
}

// defaultWitnessByte fills unconstrained positions of witness strings.
const defaultWitnessByte = 'a'

// witness converts a solver model into a concrete program input that
// steers the concrete VM down the discovered path.
func (r *inputRegistry) witness(m solver.Model) *interp.Input {
	in := &interp.Input{
		Ints: make(map[string]int64),
		Strs: make(map[string]string),
		Env:  make(map[string]string),
	}
	for name, v := range r.spec.ConcreteInts {
		in.Ints[name] = v
	}
	for name, v := range r.spec.ConcreteStrs {
		in.Strs[name] = v
	}
	for name, v := range r.spec.ConcreteEnv {
		in.Env[name] = v
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.intOrder {
		if v, ok := m[r.ints[name]]; ok {
			in.Ints[name] = v
		} else {
			in.Ints[name] = 0
		}
	}
	for _, key := range r.strOrder {
		s := r.strs[key]
		str := r.materializeLocked(s, m)
		switch key[0] {
		case 's':
			in.Strs[s.Label] = str
		case 'e':
			in.Env[s.Label] = str
		}
	}
	// Arguments: assemble the full argv.
	if r.spec.NArgs > 0 {
		in.Args = make([]string, r.spec.NArgs)
		for i := 0; i < r.spec.NArgs; i++ {
			if v, ok := r.spec.ConcreteArgs[i]; ok {
				in.Args[i] = v
				continue
			}
			if s, ok := r.strs[fmt.Sprintf("a:%d", i)]; ok {
				in.Args[i] = r.materializeLocked(s, m)
			}
		}
	}
	return in
}

// materialize renders a symbolic string under a model: length from the
// model (0 when unconstrained), bytes from materialized byte variables,
// filler elsewhere.
func (r *inputRegistry) materialize(s *SymString, m solver.Model) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.materializeLocked(s, m)
}

func (r *inputRegistry) materializeLocked(s *SymString, m solver.Model) string {
	if s.IsLit {
		return s.Lit
	}
	length, ok := m[s.LenVar]
	if !ok {
		length = 0
	}
	if length < 0 {
		length = 0
	}
	const maxWitnessLen = 1 << 20
	if length > maxWitnessLen {
		length = maxWitnessLen
	}
	buf := make([]byte, length)
	for i := int64(0); i < length; i++ {
		b := byte(defaultWitnessByte)
		v, ok := solver.NoVar, false
		if s.ByteStride != 0 && i < int64(s.ByteLen) {
			v, ok = s.ByteBase+solver.Var(int32(i)*s.ByteStride), true
		} else {
			v, ok = r.bytes[byteKey{strID: s.ID, idx: i}]
		}
		if ok {
			if mv, ok := m[v]; ok && mv >= 0 && mv <= 255 {
				b = byte(mv)
			}
		}
		buf[i] = b
	}
	return string(buf)
}

// symbolicInputNames lists the registered symbolic channels (for reports).
func (r *inputRegistry) symbolicInputNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.intOrder)+len(r.strOrder))
	names = append(names, r.intOrder...)
	for _, key := range r.strOrder {
		names = append(names, r.strs[key].Label)
	}
	sort.Strings(names)
	return names
}
