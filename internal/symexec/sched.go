package symexec

import (
	"container/heap"
	"math/rand"
)

// Scheduler selects the next state to execute — KLEE's "searcher". The
// executor adds runnable states and repeatedly asks for the next one.
// Implementations must be deterministic given the same Add/Next sequence
// (Random uses a fixed seed).
type Scheduler interface {
	Name() string
	Add(st *State)
	// Next removes and returns a state, or nil when empty.
	Next() *State
	Len() int
}

// BFSScheduler explores states in FIFO order (breadth-first over the
// execution tree). It is the pure-symbolic-execution baseline scheduler in
// the benchmarks.
type BFSScheduler struct {
	queue []*State
	head  int
}

// NewBFS returns a breadth-first scheduler.
func NewBFS() *BFSScheduler { return &BFSScheduler{} }

// Name implements Scheduler.
func (s *BFSScheduler) Name() string { return "bfs" }

// Add implements Scheduler.
func (s *BFSScheduler) Add(st *State) { s.queue = append(s.queue, st) }

// Next implements Scheduler.
func (s *BFSScheduler) Next() *State {
	if s.head >= len(s.queue) {
		return nil
	}
	st := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	// Compact occasionally to bound memory.
	if s.head > 1024 && s.head*2 > len(s.queue) {
		s.queue = append([]*State(nil), s.queue[s.head:]...)
		s.head = 0
	}
	return st
}

// Len implements Scheduler.
func (s *BFSScheduler) Len() int { return len(s.queue) - s.head }

// DFSScheduler explores states in LIFO order (depth-first).
type DFSScheduler struct {
	stack []*State
}

// NewDFS returns a depth-first scheduler.
func NewDFS() *DFSScheduler { return &DFSScheduler{} }

// Name implements Scheduler.
func (s *DFSScheduler) Name() string { return "dfs" }

// Add implements Scheduler.
func (s *DFSScheduler) Add(st *State) { s.stack = append(s.stack, st) }

// Next implements Scheduler.
func (s *DFSScheduler) Next() *State {
	n := len(s.stack)
	if n == 0 {
		return nil
	}
	st := s.stack[n-1]
	s.stack[n-1] = nil
	s.stack = s.stack[:n-1]
	return st
}

// Len implements Scheduler.
func (s *DFSScheduler) Len() int { return len(s.stack) }

// RandomScheduler picks a uniformly random state (KLEE's random-path
// selection, approximated over the frontier). Deterministic via the seed.
type RandomScheduler struct {
	states []*State
	rng    *rand.Rand
}

// NewRandom returns a random scheduler with the given seed.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (s *RandomScheduler) Name() string { return "random" }

// Add implements Scheduler.
func (s *RandomScheduler) Add(st *State) { s.states = append(s.states, st) }

// Next implements Scheduler.
func (s *RandomScheduler) Next() *State {
	n := len(s.states)
	if n == 0 {
		return nil
	}
	i := s.rng.Intn(n)
	st := s.states[i]
	s.states[i] = s.states[n-1]
	s.states[n-1] = nil
	s.states = s.states[:n-1]
	return st
}

// Len implements Scheduler.
func (s *RandomScheduler) Len() int { return len(s.states) }

// CoverageScheduler approximates KLEE's coverage-optimized search: it
// prefers the state whose next instruction has been executed least often.
// Visits is supplied by the executor.
//
// Implementation: a lazy min-heap keyed on the visit count observed when a
// state was (re)inserted. Visit counts only grow, so a cached key is a
// lower bound on the true score — a popped entry whose count has since
// increased is re-sifted with its fresh key instead of returned. Each Next
// is O(log n) plus one re-sift per stale pop, replacing the previous O(n)
// scan of the whole frontier (which dominated profiles at 10k+ live
// states; see BenchmarkCoverageSchedulerNext).
type CoverageScheduler struct {
	h      coverageHeap
	visits func(fnIndex, pc int) int64
	stamp  int64
}

// NewCoverage returns a coverage-optimized scheduler; the executor wires
// the visit counter when it starts.
func NewCoverage() *CoverageScheduler { return &CoverageScheduler{} }

// Name implements Scheduler.
func (s *CoverageScheduler) Name() string { return "coverage" }

// SetVisitFunc wires the instruction-visit counter (called by Executor).
func (s *CoverageScheduler) SetVisitFunc(f func(fnIndex, pc int) int64) { s.visits = f }

func (s *CoverageScheduler) score(st *State) int64 {
	if s.visits == nil {
		return 0
	}
	fr := st.Top()
	return s.visits(fr.Fn.Index, fr.PC)
}

// Add implements Scheduler.
func (s *CoverageScheduler) Add(st *State) {
	s.stamp++
	heap.Push(&s.h, coverageEntry{st: st, key: s.score(st), stamp: s.stamp})
}

// Next implements Scheduler.
func (s *CoverageScheduler) Next() *State {
	for s.h.Len() > 0 {
		e := s.h[0]
		if fresh := s.score(e.st); fresh > e.key {
			// Stale: the instruction was visited since this entry was
			// keyed. Re-sift with the current count (still a lower bound
			// next time around) and try the new minimum.
			s.h[0].key = fresh
			heap.Fix(&s.h, 0)
			continue
		}
		heap.Pop(&s.h)
		return e.st
	}
	return nil
}

// Len implements Scheduler.
func (s *CoverageScheduler) Len() int { return s.h.Len() }

// coverageEntry is a frontier state with its cached visit count; stamp
// breaks ties FIFO so equal-coverage states keep insertion order.
type coverageEntry struct {
	st    *State
	key   int64
	stamp int64
}

type coverageHeap []coverageEntry

func (h coverageHeap) Len() int { return len(h) }

func (h coverageHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key < h[j].key
	}
	return h[i].stamp < h[j].stamp
}

func (h coverageHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *coverageHeap) Push(x any) { *h = append(*h, x.(coverageEntry)) }

func (h *coverageHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = coverageEntry{}
	*h = old[:n-1]
	return e
}
