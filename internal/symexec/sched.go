package symexec

import "math/rand"

// Scheduler selects the next state to execute — KLEE's "searcher". The
// executor adds runnable states and repeatedly asks for the next one.
// Implementations must be deterministic given the same Add/Next sequence
// (Random uses a fixed seed).
type Scheduler interface {
	Name() string
	Add(st *State)
	// Next removes and returns a state, or nil when empty.
	Next() *State
	Len() int
}

// BFSScheduler explores states in FIFO order (breadth-first over the
// execution tree). It is the pure-symbolic-execution baseline scheduler in
// the benchmarks.
type BFSScheduler struct {
	queue []*State
	head  int
}

// NewBFS returns a breadth-first scheduler.
func NewBFS() *BFSScheduler { return &BFSScheduler{} }

// Name implements Scheduler.
func (s *BFSScheduler) Name() string { return "bfs" }

// Add implements Scheduler.
func (s *BFSScheduler) Add(st *State) { s.queue = append(s.queue, st) }

// Next implements Scheduler.
func (s *BFSScheduler) Next() *State {
	if s.head >= len(s.queue) {
		return nil
	}
	st := s.queue[s.head]
	s.queue[s.head] = nil
	s.head++
	// Compact occasionally to bound memory.
	if s.head > 1024 && s.head*2 > len(s.queue) {
		s.queue = append([]*State(nil), s.queue[s.head:]...)
		s.head = 0
	}
	return st
}

// Len implements Scheduler.
func (s *BFSScheduler) Len() int { return len(s.queue) - s.head }

// DFSScheduler explores states in LIFO order (depth-first).
type DFSScheduler struct {
	stack []*State
}

// NewDFS returns a depth-first scheduler.
func NewDFS() *DFSScheduler { return &DFSScheduler{} }

// Name implements Scheduler.
func (s *DFSScheduler) Name() string { return "dfs" }

// Add implements Scheduler.
func (s *DFSScheduler) Add(st *State) { s.stack = append(s.stack, st) }

// Next implements Scheduler.
func (s *DFSScheduler) Next() *State {
	n := len(s.stack)
	if n == 0 {
		return nil
	}
	st := s.stack[n-1]
	s.stack[n-1] = nil
	s.stack = s.stack[:n-1]
	return st
}

// Len implements Scheduler.
func (s *DFSScheduler) Len() int { return len(s.stack) }

// RandomScheduler picks a uniformly random state (KLEE's random-path
// selection, approximated over the frontier). Deterministic via the seed.
type RandomScheduler struct {
	states []*State
	rng    *rand.Rand
}

// NewRandom returns a random scheduler with the given seed.
func NewRandom(seed int64) *RandomScheduler {
	return &RandomScheduler{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (s *RandomScheduler) Name() string { return "random" }

// Add implements Scheduler.
func (s *RandomScheduler) Add(st *State) { s.states = append(s.states, st) }

// Next implements Scheduler.
func (s *RandomScheduler) Next() *State {
	n := len(s.states)
	if n == 0 {
		return nil
	}
	i := s.rng.Intn(n)
	st := s.states[i]
	s.states[i] = s.states[n-1]
	s.states[n-1] = nil
	s.states = s.states[:n-1]
	return st
}

// Len implements Scheduler.
func (s *RandomScheduler) Len() int { return len(s.states) }

// CoverageScheduler approximates KLEE's coverage-optimized search: it
// prefers the state whose next instruction has been executed least often.
// Visits is supplied by the executor.
type CoverageScheduler struct {
	states []*State
	visits func(fnIndex, pc int) int64
}

// NewCoverage returns a coverage-optimized scheduler; the executor wires
// the visit counter when it starts.
func NewCoverage() *CoverageScheduler { return &CoverageScheduler{} }

// Name implements Scheduler.
func (s *CoverageScheduler) Name() string { return "coverage" }

// SetVisitFunc wires the instruction-visit counter (called by Executor).
func (s *CoverageScheduler) SetVisitFunc(f func(fnIndex, pc int) int64) { s.visits = f }

// Add implements Scheduler.
func (s *CoverageScheduler) Add(st *State) { s.states = append(s.states, st) }

// Next implements Scheduler.
func (s *CoverageScheduler) Next() *State {
	n := len(s.states)
	if n == 0 {
		return nil
	}
	best := 0
	if s.visits != nil {
		var bestScore int64 = 1<<62 - 1
		for i, st := range s.states {
			fr := st.Top()
			score := s.visits(fr.Fn.Index, fr.PC)
			if score < bestScore {
				bestScore = score
				best = i
			}
		}
	}
	st := s.states[best]
	s.states[best] = s.states[n-1]
	s.states[n-1] = nil
	s.states = s.states[:n-1]
	return st
}

// Len implements Scheduler.
func (s *CoverageScheduler) Len() int { return len(s.states) }
