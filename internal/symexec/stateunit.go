package symexec

import (
	"context"
	"fmt"

	"repro/internal/symexec/snapshot"
)

// A StateUnit is the payload of a FrameStateUnit: one frontier shard
// (a checkpoint blob from EncodeFrontierShards) together with the budgets
// the worker must run it under. Budgets travel with the unit — the worker
// process has no other channel to learn the coordinator's limits, and the
// global invariant (shard results sum to the undivided run) only holds
// when every shard sees the same MaxSteps/MaxStates as the coordinator's
// own executor.
type StateUnit struct {
	MaxSteps  int64
	MaxStates int
	Blob      []byte
}

const stateUnitVersion = 1

// EncodeStateUnit serializes u for the wire.
func EncodeStateUnit(u *StateUnit) []byte {
	w := snapshot.NewWriter()
	w.Uvarint(stateUnitVersion)
	w.Varint(u.MaxSteps)
	w.Int(u.MaxStates)
	w.Blob(u.Blob)
	return w.Bytes()
}

// DecodeStateUnit parses a FrameStateUnit payload.
func DecodeStateUnit(b []byte) (*StateUnit, error) {
	r := snapshot.NewReader(b)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != stateUnitVersion {
		return nil, fmt.Errorf("symexec: state unit version %d not supported (want %d)", ver, stateUnitVersion)
	}
	u := &StateUnit{}
	if u.MaxSteps, err = r.Varint(); err != nil {
		return nil, err
	}
	if u.MaxStates, err = r.Int(); err != nil {
		return nil, err
	}
	if u.Blob, err = r.Blob(); err != nil {
		return nil, err
	}
	return u, nil
}

// StateResult is a worker's account of running one frontier shard to its
// stop condition. Only deterministic counters cross the wire — the
// coordinator sums shard results, and the sum must equal the undivided
// run's counters (pinned by TestFrontierShardsUnion and the dispatch
// differential tests).
type StateResult struct {
	Paths         int
	StatesCreated int
	Steps         int64
	Forks         int
	SolverChecks  int
	SolverSat     int
	SolverUnsat   int
	Exhausted     bool
	StepLimited   bool
	Vulns         []*Vulnerability
}

// EncodeStateResult serializes r for the wire.
func EncodeStateResult(res *StateResult) []byte {
	w := snapshot.NewWriter()
	w.Uvarint(stateUnitVersion)
	w.Int(res.Paths)
	w.Int(res.StatesCreated)
	w.Varint(res.Steps)
	w.Int(res.Forks)
	w.Int(res.SolverChecks)
	w.Int(res.SolverSat)
	w.Int(res.SolverUnsat)
	w.Bool(res.Exhausted)
	w.Bool(res.StepLimited)
	w.Int(len(res.Vulns))
	for _, v := range res.Vulns {
		EncodeVulnerability(w, v)
	}
	return w.Bytes()
}

// DecodeStateResult parses a FrameResult payload produced by
// EncodeStateResult.
func DecodeStateResult(b []byte) (*StateResult, error) {
	r := snapshot.NewReader(b)
	ver, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if ver != stateUnitVersion {
		return nil, fmt.Errorf("symexec: state result version %d not supported (want %d)", ver, stateUnitVersion)
	}
	res := &StateResult{}
	if res.Paths, err = r.Int(); err != nil {
		return nil, err
	}
	if res.StatesCreated, err = r.Int(); err != nil {
		return nil, err
	}
	if res.Steps, err = r.Varint(); err != nil {
		return nil, err
	}
	if res.Forks, err = r.Int(); err != nil {
		return nil, err
	}
	if res.SolverChecks, err = r.Int(); err != nil {
		return nil, err
	}
	if res.SolverSat, err = r.Int(); err != nil {
		return nil, err
	}
	if res.SolverUnsat, err = r.Int(); err != nil {
		return nil, err
	}
	if res.Exhausted, err = r.Bool(); err != nil {
		return nil, err
	}
	if res.StepLimited, err = r.Bool(); err != nil {
		return nil, err
	}
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > len(b) {
		return nil, fmt.Errorf("symexec: state result claims %d vulnerabilities", n)
	}
	for i := 0; i < n; i++ {
		v, err := DecodeVulnerability(r)
		if err != nil {
			return nil, err
		}
		res.Vulns = append(res.Vulns, v)
	}
	return res, nil
}

// RunStateUnit resumes the unit's shard and runs it to its stop condition
// (budget exhaustion or an empty frontier). Used by the worker side of
// pure-mode dispatch (symexec -dispatch); the coordinator merges the shard
// results in shard order.
func RunStateUnit(ctx context.Context, u *StateUnit) (*StateResult, error) {
	ex, err := ResumeExecutor(u.Blob, Options{
		MaxSteps:        u.MaxSteps,
		MaxStates:       u.MaxStates,
		StopAtFirstVuln: false,
	})
	if err != nil {
		return nil, err
	}
	res := ex.RunContext(ctx)
	return &StateResult{
		Paths:         res.Paths,
		StatesCreated: res.StatesCreated,
		Steps:         res.Steps,
		Forks:         res.Forks,
		SolverChecks:  res.SolverChecks,
		SolverSat:     res.SolverSat,
		SolverUnsat:   res.SolverUnsat,
		Exhausted:     res.Exhausted,
		StepLimited:   res.StepLimited,
		Vulns:         res.Vulns,
	}, nil
}
