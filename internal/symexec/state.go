package symexec

import (
	"repro/internal/bytecode"
	"repro/internal/solver"
	"repro/internal/trace"
)

// StateStatus is a state's lifecycle phase.
type StateStatus int

// State statuses.
const (
	StatusActive StateStatus = iota + 1
	StatusSuspended
	StatusTerminated
	StatusFaulted
	StatusInfeasible
)

// Frame is one activation record of the symbolic machine.
type Frame struct {
	Fn     *bytecode.Fn
	PC     int
	Locals []Value
	Stack  []Value
}

func (f *Frame) clone() *Frame {
	nf := &Frame{Fn: f.Fn, PC: f.PC}
	nf.Locals = make([]Value, len(f.Locals))
	nf.Stack = make([]Value, len(f.Stack))
	for i, v := range f.Locals {
		nf.Locals[i] = cloneValue(v)
	}
	for i, v := range f.Stack {
		nf.Stack[i] = cloneValue(v)
	}
	return nf
}

// cloneValue copies a value for a forked state. Only buffers are mutable;
// everything else is immutable and shared.
func cloneValue(v Value) Value {
	if v.Kind == KindBuf && v.Buf != nil {
		v.Buf = v.Buf.clone()
	}
	return v
}

// State is one symbolic execution path in progress — the unit KLEE
// schedules. It owns a call stack, a snapshot of globals, the path
// condition, the trace of instrumentation locations it has crossed, and
// the guidance bookkeeping used by StatSym's state manager (candidate-path
// progress and diverted hops, §VI-C).
type State struct {
	ID     int
	Status StateStatus

	Frames  []*Frame
	Globals []Value

	// Constraints is the path condition (a conjunction). Forked children
	// copy it, so it is append-only per state.
	Constraints []solver.Constraint

	// Trace is the sequence of function entry/exit locations crossed.
	Trace []trace.Location

	// Depth counts branch decisions taken; Forks counts forks performed
	// at this state (for statistics).
	Depth int

	// Guidance bookkeeping (maintained by the core guidance hook):
	// PathIndex is the index of the next candidate-path node expected,
	// Diverted is the number of hops off the candidate path, and Revived
	// marks a state resumed from the suspended pool (guidance then leaves
	// it alone so the search degenerates gracefully to pure symbolic
	// execution, as the paper's footnote 1 requires).
	PathIndex int
	Diverted  int
	Revived   bool

	// LastModel caches a satisfying assignment for Constraints. It lets
	// the executor skip solver calls when a new branch condition already
	// holds under the cached model (the standard KLEE fast path). The map
	// is shared across forks and never mutated in place.
	LastModel solver.Model

	// pcVars is the set of variables mentioned by Constraints, and bounds
	// caches the interval implied by the single-variable constraints.
	// Together they power two incremental fast paths: constraints over
	// variables disjoint from the path condition can be solved in
	// isolation, and single-variable contradictions refute in O(1).
	pcVars map[solver.Var]struct{}
	bounds map[solver.Var]VarBounds

	// seq is an insertion sequence number assigned by the executor; used
	// by schedulers for deterministic tie-breaking.
	seq int
}

// Seq returns the state's insertion sequence number (monotonically
// increasing across the run; later states have larger numbers).
func (st *State) Seq() int { return st.seq }

// Top returns the current (innermost) frame.
func (st *State) Top() *Frame { return st.Frames[len(st.Frames)-1] }

// push appends a value to the operand stack of the top frame.
func (st *State) push(v Value) {
	fr := st.Top()
	fr.Stack = append(fr.Stack, v)
}

// pop removes and returns the top operand.
func (st *State) pop() Value {
	fr := st.Top()
	v := fr.Stack[len(fr.Stack)-1]
	fr.Stack = fr.Stack[:len(fr.Stack)-1]
	return v
}

// AddConstraint appends c to the path condition.
func (st *State) AddConstraint(c solver.Constraint) {
	st.Constraints = append(st.Constraints, c)
}

// fork deep-copies the state (the executor assigns the child a fresh ID).
func (st *State) fork() *State {
	ns := &State{
		ID:        -1,
		Status:    StatusActive,
		Depth:     st.Depth,
		PathIndex: st.PathIndex,
		Diverted:  st.Diverted,
		Revived:   st.Revived,
		LastModel: st.LastModel,
	}
	ns.Frames = make([]*Frame, len(st.Frames))
	for i, f := range st.Frames {
		ns.Frames[i] = f.clone()
	}
	ns.Globals = make([]Value, len(st.Globals))
	for i, v := range st.Globals {
		ns.Globals[i] = cloneValue(v)
	}
	ns.Constraints = make([]solver.Constraint, len(st.Constraints), len(st.Constraints)+4)
	copy(ns.Constraints, st.Constraints)
	ns.Trace = make([]trace.Location, len(st.Trace), len(st.Trace)+4)
	copy(ns.Trace, st.Trace)
	if st.pcVars != nil {
		ns.pcVars = make(map[solver.Var]struct{}, len(st.pcVars))
		for v := range st.pcVars {
			ns.pcVars[v] = struct{}{}
		}
	}
	if st.bounds != nil {
		ns.bounds = make(map[solver.Var]VarBounds, len(st.bounds))
		for v, b := range st.bounds {
			ns.bounds[v] = b
		}
	}
	return ns
}

// VarBounds is the interval a state's single-variable path constraints
// imply for one variable.
type VarBounds struct {
	Lo, Hi       int64
	HasLo, HasHi bool
}

// mentions reports whether the path condition constrains v.
func (st *State) mentions(v solver.Var) bool {
	_, ok := st.pcVars[v]
	return ok
}

// noteVars records the constraint's variables and updates the cached
// bounds for single-variable forms.
func (st *State) noteVars(c solver.Constraint) {
	if st.pcVars == nil {
		st.pcVars = make(map[solver.Var]struct{}, 8)
	}
	for _, tm := range c.E.Terms {
		st.pcVars[tm.Var] = struct{}{}
	}
	v, coeff, single := c.E.SingleVar()
	if !single || (coeff != 1 && coeff != -1) {
		return
	}
	if st.bounds == nil {
		st.bounds = make(map[solver.Var]VarBounds, 8)
	}
	b := st.bounds[v]
	switch {
	case c.Op == solver.OpLe && coeff == 1: // v <= -Const
		k := -c.E.Const
		if !b.HasHi || k < b.Hi {
			b.Hi, b.HasHi = k, true
		}
	case c.Op == solver.OpLe && coeff == -1: // v >= Const
		k := c.E.Const
		if !b.HasLo || k > b.Lo {
			b.Lo, b.HasLo = k, true
		}
	case c.Op == solver.OpEq && (coeff == 1 || coeff == -1):
		k := -c.E.Const
		if coeff == -1 {
			k = c.E.Const
		}
		if !b.HasLo || k > b.Lo {
			b.Lo, b.HasLo = k, true
		}
		if !b.HasHi || k < b.Hi {
			b.Hi, b.HasHi = k, true
		}
	default:
		return
	}
	st.bounds[v] = b
}

// CurrentFunc returns the name of the function the state is executing.
func (st *State) CurrentFunc() string {
	if len(st.Frames) == 0 {
		return ""
	}
	return st.Top().Fn.Name
}
