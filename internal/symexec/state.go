package symexec

import (
	"sync/atomic"

	"repro/internal/bytecode"
	"repro/internal/solver"
	"repro/internal/trace"
)

// StateStatus is a state's lifecycle phase.
type StateStatus int

// State statuses.
const (
	StatusActive StateStatus = iota + 1
	StatusSuspended
	StatusTerminated
	StatusFaulted
	StatusInfeasible
	// StatusDepthExhausted marks a path cut off by the MaxDepth call-stack
	// bound — a resource limit, not a normal exit, so reports and metrics
	// can tell truncated coverage from genuine termination.
	StatusDepthExhausted
)

// Frame is one activation record of the symbolic machine.
//
// Frames are shared between a state and its forked children copy-on-write:
// refs counts the extra states referencing the frame (0 = exclusively
// owned). The executor maintains the invariant that a state's top frame is
// always exclusively owned — every step mutates it (PC, operand stack) —
// so only frames buried under a call are ever shared, and they are
// privatized when a return exposes them (see State.ensureTopOwned).
//
// refs is atomic because under parallel frontier execution two states
// sharing a buried frame can fork (increment) and return (decrement-and-
// copy) concurrently on different workers.
type Frame struct {
	Fn     *bytecode.Fn
	PC     int
	Locals []Value
	Stack  []Value

	refs atomic.Int32
}

// ownedCopy returns a private copy of the frame. Values are immutable
// (buffer cells live in the state heap), so slice copies suffice.
func (f *Frame) ownedCopy() *Frame {
	nf := &Frame{Fn: f.Fn, PC: f.PC}
	nf.Locals = append([]Value(nil), f.Locals...)
	nf.Stack = append([]Value(nil), f.Stack...)
	return nf
}

// State is one symbolic execution path in progress — the unit KLEE
// schedules. It owns a call stack, a snapshot of globals, the path
// condition, the trace of instrumentation locations it has crossed, and
// the guidance bookkeeping used by StatSym's state manager (candidate-path
// progress and diverted hops, §VI-C).
//
// Forking is copy-on-write throughout: frames below the top are shared
// with a reference count, globals / buffer heaps / path-condition
// bookkeeping are shared behind dirty flags and copied on first write, and
// the constraint and trace slices share their backing array with the child
// holding a capacity-clamped view (only the parent, whose capacity extends
// past the shared prefix, may append in place; children reallocate).
type State struct {
	ID     int
	Status StateStatus

	Frames  []*Frame
	Globals []Value

	// Constraints is the path condition (a conjunction). It grows by
	// appending; the only in-place mutation is single-variable bound
	// compaction, which must respect consShared.
	Constraints []solver.Constraint

	// Trace is the sequence of function entry/exit locations crossed.
	Trace []trace.Location

	// Depth counts branch decisions taken; Forks counts forks performed
	// at this state (for statistics).
	Depth int

	// Guidance bookkeeping (maintained by the core guidance hook):
	// PathIndex is the index of the next candidate-path node expected,
	// Diverted is the number of hops off the candidate path, and Revived
	// marks a state resumed from the suspended pool (guidance then leaves
	// it alone so the search degenerates gracefully to pure symbolic
	// execution, as the paper's footnote 1 requires).
	PathIndex int
	Diverted  int
	Revived   bool

	// LastModel caches a satisfying assignment for Constraints. It lets
	// the executor skip solver calls when a new branch condition already
	// holds under the cached model (the standard KLEE fast path). The map
	// is shared across forks and never mutated in place.
	LastModel solver.Model

	// pcVars is the set of variables mentioned by Constraints, and bounds
	// caches the interval implied by the single-variable constraints.
	// Together they power two incremental fast paths: constraints over
	// variables disjoint from the path condition can be solved in
	// isolation, and single-variable contradictions refute in O(1).
	// Shared with forked children until first write (varsShared).
	pcVars map[solver.Var]struct{}
	bounds map[solver.Var]VarBounds

	// pcDigest is the rolling order-insensitive digest of Constraints,
	// maintained incrementally so solver queries never re-hash the whole
	// path condition.
	pcDigest solver.Digest

	// heap maps buffer identities to their cell storage. Forks share the
	// map (heapShared) and replace the ownership token (heapTok), so both
	// sides copy the map, the touched header, and the touched chunk on
	// first write — everything else stays shared.
	heap       map[*SymBuffer]*bufCells
	heapShared bool
	heapTok    *heapToken

	// globalsShared / varsShared mark Globals and pcVars/bounds as shared
	// with another state; the next write copies first.
	globalsShared bool
	varsShared    bool

	// consShared is the length of the Constraints prefix shared with a
	// forked child. In-place writes below it must copy the slice first;
	// an append that reallocates clears it.
	consShared int

	// pendingSuspend marks a freshly forked child whose guidance hook asked
	// for suspension during the fork itself (a summary application fires
	// per-path Leave events inside one step). addState routes such children
	// to the suspended pool instead of the scheduler.
	pendingSuspend bool

	// seq is an insertion sequence number assigned by the executor; used
	// by schedulers for deterministic tie-breaking.
	seq int
}

// Seq returns the state's insertion sequence number (monotonically
// increasing across the run; later states have larger numbers).
func (st *State) Seq() int { return st.seq }

// Top returns the current (innermost) frame.
func (st *State) Top() *Frame { return st.Frames[len(st.Frames)-1] }

// push appends a value to the operand stack of the top frame.
func (st *State) push(v Value) {
	fr := st.Top()
	fr.Stack = append(fr.Stack, v)
}

// pop removes and returns the top operand.
func (st *State) pop() Value {
	fr := st.Top()
	v := fr.Stack[len(fr.Stack)-1]
	fr.Stack = fr.Stack[:len(fr.Stack)-1]
	return v
}

// PCDigest returns the rolling digest of the path condition. It always
// equals solver.DigestOf(st.Constraints).
func (st *State) PCDigest() solver.Digest { return st.pcDigest }

// AddConstraint appends c to the path condition.
func (st *State) AddConstraint(c solver.Constraint) {
	st.appendConstraint(c)
}

// appendConstraint grows the path condition, keeping the rolling digest
// and the shared-prefix marker coherent. Appending is always safe with
// respect to forked children: a child's view is capacity-clamped at the
// shared prefix, so in-place growth lands beyond what any child can see,
// and a reallocation makes the array private.
func (st *State) appendConstraint(c solver.Constraint) {
	oldCap := cap(st.Constraints)
	st.Constraints = append(st.Constraints, c)
	if cap(st.Constraints) != oldCap {
		st.consShared = 0
	}
	st.pcDigest = st.pcDigest.Add(solver.HashConstraint(c))
}

// replaceConstraint overwrites Constraints[i] (single-variable bound
// compaction), copying the slice first when i falls inside a prefix shared
// with a forked child.
func (st *State) replaceConstraint(i int, c solver.Constraint) {
	old := st.Constraints[i]
	if i < st.consShared {
		st.Constraints = append([]solver.Constraint(nil), st.Constraints...)
		st.consShared = 0
	}
	st.Constraints[i] = c
	st.pcDigest = st.pcDigest.Remove(solver.HashConstraint(old)).Add(solver.HashConstraint(c))
}

// fork returns a copy-on-write child (the executor assigns it a fresh ID).
// Only the child's top frame is copied eagerly — both sides mutate their
// top frame on every step, so sharing it would be pure overhead — and
// everything else is shared until first write.
func (st *State) fork() *State {
	ns := &State{
		ID:        -1,
		Status:    StatusActive,
		Depth:     st.Depth,
		PathIndex: st.PathIndex,
		Diverted:  st.Diverted,
		Revived:   st.Revived,
		LastModel: st.LastModel,
		pcDigest:  st.pcDigest,
	}
	// Frames: share all but the top, which the child copies eagerly.
	ns.Frames = make([]*Frame, len(st.Frames))
	copy(ns.Frames, st.Frames)
	top := len(st.Frames) - 1
	for _, f := range st.Frames[:top] {
		f.refs.Add(1)
	}
	ns.Frames[top] = st.Frames[top].ownedCopy()
	// Globals: share the slice behind a dirty flag on both sides.
	ns.Globals = st.Globals
	ns.globalsShared = true
	st.globalsShared = true
	// Constraints/Trace: the child gets a capacity-clamped view, so its
	// own appends reallocate while the parent keeps appending in place
	// (growth past the clamp is invisible to the child).
	n := len(st.Constraints)
	ns.Constraints = st.Constraints[:n:n]
	ns.consShared = n
	st.consShared = n
	m := len(st.Trace)
	ns.Trace = st.Trace[:m:m]
	// pcVars/bounds: shared maps behind a dirty flag.
	ns.pcVars = st.pcVars
	ns.bounds = st.bounds
	ns.varsShared = true
	st.varsShared = true
	// Heap: share the map and drop both sides' ownership tokens, freezing
	// every header and chunk in place (O(1) — no walk over the heap).
	// Either side's next buffer write re-owns just what it touches.
	if st.heap != nil {
		ns.heap = st.heap
		ns.heapShared = true
		st.heapShared = true
		st.heapTok = nil
	}
	return ns
}

// ensureTopOwned privatizes the top frame if it is shared. The executor
// calls it whenever a return exposes a buried (potentially shared) frame,
// restoring the owned-top invariant before the next step mutates PC or
// the operand stack.
func (st *State) ensureTopOwned() {
	i := len(st.Frames) - 1
	if i < 0 {
		return
	}
	f := st.Frames[i]
	// Release protocol: a sibling sharing this frame can fork (refs++) or
	// return (refs--) concurrently. Seeing 0 means this state is the last
	// sharer standing — everyone else has copied out — so the frame is
	// kept and may be mutated without a copy. The copy must complete
	// BEFORE the decrement is published: a sibling only starts mutating
	// the frame after it observes refs==0, which orders its writes after
	// this state's reads. Copying after a successful decrement would let
	// the new sole owner's pushes race the copy.
	for {
		r := f.refs.Load()
		if r == 0 {
			return
		}
		nf := f.ownedCopy()
		if f.refs.CompareAndSwap(r, r-1) {
			st.Frames[i] = nf
			return
		}
	}
}

// ensureGlobalsOwned privatizes the globals slice before a write.
func (st *State) ensureGlobalsOwned() {
	if st.globalsShared {
		st.Globals = append([]Value(nil), st.Globals...)
		st.globalsShared = false
	}
}

// ensureVarsOwned privatizes the path-condition bookkeeping maps before a
// write.
func (st *State) ensureVarsOwned() {
	if !st.varsShared {
		return
	}
	if st.pcVars != nil {
		nv := make(map[solver.Var]struct{}, len(st.pcVars)+4)
		for v := range st.pcVars {
			nv[v] = struct{}{}
		}
		st.pcVars = nv
	}
	if st.bounds != nil {
		nb := make(map[solver.Var]VarBounds, len(st.bounds)+4)
		for v, b := range st.bounds {
			nb[v] = b
		}
		st.bounds = nb
	}
	st.varsShared = false
}

// bufSmeared reports whether the buffer has been smeared by a
// symbolic-index write in this state.
func (st *State) bufSmeared(b *SymBuffer) bool {
	if c := st.heap[b]; c != nil {
		return c.smeared
	}
	return false
}

// bufCell reads one buffer cell. Buffers without heap storage — and
// untouched chunks of stored buffers — read as zeroes.
func (st *State) bufCell(b *SymBuffer, i int) Value {
	if c := st.heap[b]; c != nil {
		if ch := c.chunks[i>>cellChunkShift]; ch != nil {
			return ch.data[i&cellChunkMask]
		}
	}
	return IntVal(0)
}

// bufCellsForWrite returns the buffer's cell header, exclusively owned by
// this state: it privatizes the heap map if shared, materializes an empty
// chunk index for untouched buffers, and copies headers owned elsewhere
// (sharing their frozen chunks).
func (st *State) bufCellsForWrite(b *SymBuffer) *bufCells {
	if st.heapShared {
		nh := make(map[*SymBuffer]*bufCells, len(st.heap)+2)
		for k, v := range st.heap {
			nh[k] = v
		}
		st.heap = nh
		st.heapShared = false
	}
	if st.heap == nil {
		st.heap = make(map[*SymBuffer]*bufCells, 4)
	}
	if st.heapTok == nil {
		st.heapTok = new(heapToken)
	}
	c := st.heap[b]
	if c == nil {
		c = &bufCells{
			owner:  st.heapTok,
			chunks: make([]*cellChunk, (b.Cap+cellChunkMask)>>cellChunkShift),
		}
		st.heap[b] = c
		return c
	}
	if c.owner != st.heapTok {
		nc := &bufCells{
			owner:   st.heapTok,
			chunks:  append([]*cellChunk(nil), c.chunks...),
			smeared: c.smeared,
		}
		st.heap[b] = nc
		return nc
	}
	return c
}

// setBufCell writes one buffer cell, re-owning (or materializing) only the
// chunk that holds it.
func (st *State) setBufCell(b *SymBuffer, i int, v Value) {
	c := st.bufCellsForWrite(b)
	ci := i >> cellChunkShift
	ch := c.chunks[ci]
	switch {
	case ch == nil:
		ch = &cellChunk{owner: c.owner}
		for j := range ch.data {
			ch.data[j] = IntVal(0)
		}
		c.chunks[ci] = ch
	case ch.owner != c.owner:
		nch := &cellChunk{owner: c.owner, data: ch.data}
		c.chunks[ci] = nch
		ch = nch
	}
	ch.data[i&cellChunkMask] = v
}

// VarBounds is the interval a state's single-variable path constraints
// imply for one variable.
type VarBounds struct {
	Lo, Hi       int64
	HasLo, HasHi bool
}

// mentions reports whether the path condition constrains v.
func (st *State) mentions(v solver.Var) bool {
	_, ok := st.pcVars[v]
	return ok
}

// noteVars records the constraint's variables and updates the cached
// bounds for single-variable forms.
func (st *State) noteVars(c solver.Constraint) {
	st.ensureVarsOwned()
	if st.pcVars == nil {
		st.pcVars = make(map[solver.Var]struct{}, 8)
	}
	for _, tm := range c.E.Terms {
		st.pcVars[tm.Var] = struct{}{}
	}
	v, coeff, single := c.E.SingleVar()
	if !single || (coeff != 1 && coeff != -1) {
		return
	}
	if st.bounds == nil {
		st.bounds = make(map[solver.Var]VarBounds, 8)
	}
	b := st.bounds[v]
	switch {
	case c.Op == solver.OpLe && coeff == 1: // v <= -Const
		k := -c.E.Const
		if !b.HasHi || k < b.Hi {
			b.Hi, b.HasHi = k, true
		}
	case c.Op == solver.OpLe && coeff == -1: // v >= Const
		k := c.E.Const
		if !b.HasLo || k > b.Lo {
			b.Lo, b.HasLo = k, true
		}
	case c.Op == solver.OpEq && (coeff == 1 || coeff == -1):
		k := -c.E.Const
		if coeff == -1 {
			k = c.E.Const
		}
		if !b.HasLo || k > b.Lo {
			b.Lo, b.HasLo = k, true
		}
		if !b.HasHi || k < b.Hi {
			b.Hi, b.HasHi = k, true
		}
	default:
		return
	}
	st.bounds[v] = b
}

// CurrentFunc returns the name of the function the state is executing.
func (st *State) CurrentFunc() string {
	if len(st.Frames) == 0 {
		return ""
	}
	return st.Top().Fn.Name
}
