package symexec

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/solver"
	"repro/internal/symexec/snapshot"
	"repro/internal/trace"
)

// Wire codecs for the executor's own types: input specs, values, states,
// and vulnerabilities. They live in this package (not snapshot) because
// they reach private State/registry fields; snapshot supplies the byte
// primitives and the codecs for the dependency-free types.
//
// State encoding uses two side tables built in a deterministic walk order:
// symbolic-string identities and buffer identities are emitted once and
// referenced by ordinal afterwards, so aliasing (two locals naming the same
// buffer, the registry and a frame sharing a string) survives the round
// trip. Copy-on-write sharing between states, by contrast, is an in-process
// optimization, not semantics — each decoded state owns private frames,
// maps, and chunk storage.

// EncodeSpec writes an input spec (nil allowed).
func EncodeSpec(w *snapshot.Writer, s *InputSpec) {
	if s == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Varint(s.MaxStrLen)
	snapshot.EncodeIntMap(w, s.StrLenMax)
	w.Varint(s.IntMin)
	w.Varint(s.IntMax)
	snapshot.EncodeIntMap(w, s.ConcreteInts)
	snapshot.EncodeStrMap(w, s.ConcreteStrs)
	snapshot.EncodeStrMap(w, s.ConcreteEnv)
	w.Int(s.NArgs)
	idxs := make([]int, 0, len(s.ConcreteArgs))
	for i := range s.ConcreteArgs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	w.Int(len(idxs))
	for _, i := range idxs {
		w.Int(i)
		w.String(s.ConcreteArgs[i])
	}
	snapshot.EncodeInput(w, s.SeedInput)
}

// DecodeSpec reads an input spec (nil when absent).
func DecodeSpec(r *snapshot.Reader) (*InputSpec, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	s := &InputSpec{}
	if s.MaxStrLen, err = r.Varint(); err != nil {
		return nil, err
	}
	if s.StrLenMax, err = snapshot.DecodeIntMap(r); err != nil {
		return nil, err
	}
	if s.IntMin, err = r.Varint(); err != nil {
		return nil, err
	}
	if s.IntMax, err = r.Varint(); err != nil {
		return nil, err
	}
	if s.ConcreteInts, err = snapshot.DecodeIntMap(r); err != nil {
		return nil, err
	}
	if s.ConcreteStrs, err = snapshot.DecodeStrMap(r); err != nil {
		return nil, err
	}
	if s.ConcreteEnv, err = snapshot.DecodeStrMap(r); err != nil {
		return nil, err
	}
	if s.NArgs, err = r.Int(); err != nil {
		return nil, err
	}
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("symexec: concrete-arg count %d out of range", n)
	}
	s.ConcreteArgs = make(map[int]string, n)
	for i := 0; i < n; i++ {
		idx, err := r.Int()
		if err != nil {
			return nil, err
		}
		v, err := r.String()
		if err != nil {
			return nil, err
		}
		s.ConcreteArgs[idx] = v
	}
	if s.SeedInput, err = snapshot.DecodeInput(r); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeVulnerability writes a verified vulnerability (nil allowed).
func EncodeVulnerability(w *snapshot.Writer, v *Vulnerability) {
	if v == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.Int(int(v.Kind))
	w.Sym(v.Func)
	snapshot.EncodePos(w, v.Pos)
	w.Int(len(v.Path))
	for _, l := range v.Path {
		snapshot.EncodeLocation(w, l)
	}
	snapshot.EncodeConstraints(w, v.Constraints)
	snapshot.EncodeModel(w, v.Model)
	snapshot.EncodeInput(w, v.Witness)
}

// DecodeVulnerability reads a vulnerability (nil when absent).
func DecodeVulnerability(r *snapshot.Reader) (*Vulnerability, error) {
	present, err := r.Bool()
	if err != nil || !present {
		return nil, err
	}
	v := &Vulnerability{}
	kind, err := r.Int()
	if err != nil {
		return nil, err
	}
	v.Kind = interp.FaultKind(kind)
	if v.Func, err = r.Sym(); err != nil {
		return nil, err
	}
	if v.Pos, err = snapshot.DecodePos(r); err != nil {
		return nil, err
	}
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > r.Len() {
		return nil, fmt.Errorf("symexec: path length %d out of range", n)
	}
	if n > 0 {
		v.Path = make([]trace.Location, n)
		for i := range v.Path {
			if v.Path[i], err = snapshot.DecodeLocation(r); err != nil {
				return nil, err
			}
		}
	}
	if v.Constraints, err = snapshot.DecodeConstraints(r); err != nil {
		return nil, err
	}
	if v.Model, err = snapshot.DecodeModel(r); err != nil {
		return nil, err
	}
	if v.Witness, err = snapshot.DecodeInput(r); err != nil {
		return nil, err
	}
	return v, nil
}

// stateEncoder assigns ordinals to string and buffer identities as they are
// first encountered, emitting each identity's payload inline at that point.
// The decoder mirrors the walk, so references always resolve.
type stateEncoder struct {
	w    *snapshot.Writer
	strs map[*SymString]int
	bufs map[*SymBuffer]int
}

func newStateEncoder(w *snapshot.Writer) *stateEncoder {
	return &stateEncoder{w: w, strs: make(map[*SymString]int), bufs: make(map[*SymBuffer]int)}
}

// symStr emits a string reference: the ordinal for known identities, or the
// next ordinal plus the full record on first encounter.
func (e *stateEncoder) symStr(s *SymString) {
	if id, ok := e.strs[s]; ok {
		e.w.Uvarint(uint64(id))
		return
	}
	id := len(e.strs)
	e.strs[s] = id
	e.w.Uvarint(uint64(id))
	e.w.Bool(s.IsLit)
	e.w.String(s.Lit)
	e.w.Int(s.ID)
	e.w.Sym(s.Label)
	e.w.Varint(int64(s.LenVar))
	e.w.Varint(int64(s.ByteBase))
	e.w.Int(int(s.ByteStride))
	e.w.Int(s.ByteLen)
}

// symBuf emits a buffer reference the same way.
func (e *stateEncoder) symBuf(b *SymBuffer) {
	if id, ok := e.bufs[b]; ok {
		e.w.Uvarint(uint64(id))
		return
	}
	id := len(e.bufs)
	e.bufs[b] = id
	e.w.Uvarint(uint64(id))
	e.w.Int(b.Cap)
}

// Value tags.
const (
	tagZero byte = iota // the zero Value (an unwritten local slot)
	tagInt
	tagCond
	tagStr
	tagBuf
)

func (e *stateEncoder) value(v Value) {
	switch {
	case v.Kind == KindInt && v.IsCond:
		e.w.Byte(tagCond)
		snapshot.EncodeConstraint(e.w, v.Cond)
	case v.Kind == KindInt:
		e.w.Byte(tagInt)
		snapshot.EncodeLinExpr(e.w, v.Lin)
	case v.Kind == KindString:
		e.w.Byte(tagStr)
		e.symStr(v.Str)
	case v.Kind == KindBuf:
		e.w.Byte(tagBuf)
		e.symBuf(v.Buf)
	default:
		e.w.Byte(tagZero)
	}
}

func (e *stateEncoder) values(vs []Value) {
	e.w.Int(len(vs))
	for _, v := range vs {
		e.value(v)
	}
}

// state emits one complete state. Buffer heap storage is emitted for every
// buffer identity reachable from the state's frames and globals; chunks
// untouched in this state stay implicit (they read as zero).
func (e *stateEncoder) state(st *State, prog progIndex) error {
	w := e.w
	w.Int(st.ID)
	w.Int(int(st.Status))
	w.Int(st.seq)
	w.Int(st.Depth)
	w.Int(st.PathIndex)
	w.Int(st.Diverted)
	w.Bool(st.Revived)
	w.Int(len(st.Frames))
	for _, fr := range st.Frames {
		idx, ok := prog[fr.Fn]
		if !ok {
			return fmt.Errorf("symexec: frame function %q not in program", fr.Fn.Name)
		}
		w.Int(idx)
		w.Int(fr.PC)
		e.values(fr.Locals)
		e.values(fr.Stack)
	}
	e.values(st.Globals)
	snapshot.EncodeConstraints(w, st.Constraints)
	w.Int(len(st.Trace))
	for _, l := range st.Trace {
		snapshot.EncodeLocation(w, l)
	}
	snapshot.EncodeModel(w, st.LastModel)

	// Heap: entries for reachable buffers only (an identity that no frame,
	// stack slot, or global can reach anymore cannot influence execution).
	type heapEnt struct {
		ord   int
		cells *bufCells
	}
	var ents []heapEnt
	for b, ord := range e.bufs {
		if c := st.heap[b]; c != nil {
			ents = append(ents, heapEnt{ord: ord, cells: c})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].ord < ents[j].ord })
	w.Int(len(ents))
	for _, ent := range ents {
		w.Int(ent.ord)
		w.Bool(ent.cells.smeared)
		touched := 0
		for _, ch := range ent.cells.chunks {
			if ch != nil {
				touched++
			}
		}
		w.Int(len(ent.cells.chunks))
		w.Int(touched)
		for ci, ch := range ent.cells.chunks {
			if ch == nil {
				continue
			}
			w.Int(ci)
			for _, v := range ch.data {
				e.value(v)
			}
		}
	}
	return nil
}

// progIndex maps function pointers back to their program index.
type progIndex map[*bytecode.Fn]int

// stateDecoder mirrors stateEncoder.
type stateDecoder struct {
	r    *snapshot.Reader
	strs []*SymString
	bufs []*SymBuffer
}

func newStateDecoder(r *snapshot.Reader) *stateDecoder {
	return &stateDecoder{r: r}
}

func (d *stateDecoder) symStr() (*SymString, error) {
	id, err := d.r.Uvarint()
	if err != nil {
		return nil, err
	}
	if id < uint64(len(d.strs)) {
		return d.strs[id], nil
	}
	if id != uint64(len(d.strs)) {
		return nil, fmt.Errorf("symexec: string ordinal %d out of order", id)
	}
	s := &SymString{}
	if s.IsLit, err = d.r.Bool(); err != nil {
		return nil, err
	}
	if s.Lit, err = d.r.String(); err != nil {
		return nil, err
	}
	if s.ID, err = d.r.Int(); err != nil {
		return nil, err
	}
	if s.Label, err = d.r.Sym(); err != nil {
		return nil, err
	}
	lv, err := d.r.Varint()
	if err != nil {
		return nil, err
	}
	s.LenVar = solver.Var(lv)
	bb, err := d.r.Varint()
	if err != nil {
		return nil, err
	}
	s.ByteBase = solver.Var(bb)
	bs, err := d.r.Int()
	if err != nil {
		return nil, err
	}
	s.ByteStride = int32(bs)
	if s.ByteLen, err = d.r.Int(); err != nil {
		return nil, err
	}
	d.strs = append(d.strs, s)
	return s, nil
}

func (d *stateDecoder) symBuf() (*SymBuffer, error) {
	id, err := d.r.Uvarint()
	if err != nil {
		return nil, err
	}
	if id < uint64(len(d.bufs)) {
		return d.bufs[id], nil
	}
	if id != uint64(len(d.bufs)) {
		return nil, fmt.Errorf("symexec: buffer ordinal %d out of order", id)
	}
	capacity, err := d.r.Int()
	if err != nil {
		return nil, err
	}
	if capacity < 0 || capacity > 1<<24 {
		return nil, fmt.Errorf("symexec: buffer capacity %d out of range", capacity)
	}
	b := &SymBuffer{Cap: capacity}
	d.bufs = append(d.bufs, b)
	return b, nil
}

func (d *stateDecoder) value() (Value, error) {
	tag, err := d.r.Byte()
	if err != nil {
		return Value{}, err
	}
	switch tag {
	case tagZero:
		return Value{}, nil
	case tagInt:
		e, err := snapshot.DecodeLinExpr(d.r)
		if err != nil {
			return Value{}, err
		}
		return LinVal(e), nil
	case tagCond:
		c, err := snapshot.DecodeConstraint(d.r)
		if err != nil {
			return Value{}, err
		}
		return CondVal(c), nil
	case tagStr:
		s, err := d.symStr()
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: KindString, Str: s}, nil
	case tagBuf:
		b, err := d.symBuf()
		if err != nil {
			return Value{}, err
		}
		return BufVal(b), nil
	default:
		return Value{}, fmt.Errorf("symexec: unknown value tag %d", tag)
	}
}

func (d *stateDecoder) values() ([]Value, error) {
	n, err := d.r.Int()
	if err != nil {
		return nil, err
	}
	if n < 0 || n > d.r.Len() {
		return nil, fmt.Errorf("symexec: value count %d out of range", n)
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]Value, n)
	for i := range vs {
		if vs[i], err = d.value(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// state reads one state, rebuilding the derived path-condition bookkeeping
// (variable sets, interval bounds, rolling digest) from the constraint
// list — the compaction invariant guarantees the replay reproduces the
// incremental values exactly.
func (d *stateDecoder) state(funcs []*bytecode.Fn) (*State, error) {
	r := d.r
	st := &State{}
	var err error
	if st.ID, err = r.Int(); err != nil {
		return nil, err
	}
	status, err := r.Int()
	if err != nil {
		return nil, err
	}
	st.Status = StateStatus(status)
	if st.seq, err = r.Int(); err != nil {
		return nil, err
	}
	if st.Depth, err = r.Int(); err != nil {
		return nil, err
	}
	if st.PathIndex, err = r.Int(); err != nil {
		return nil, err
	}
	if st.Diverted, err = r.Int(); err != nil {
		return nil, err
	}
	if st.Revived, err = r.Bool(); err != nil {
		return nil, err
	}
	nframes, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nframes < 0 || nframes > r.Len() {
		return nil, fmt.Errorf("symexec: frame count %d out of range", nframes)
	}
	st.Frames = make([]*Frame, nframes)
	for i := range st.Frames {
		fnIdx, err := r.Int()
		if err != nil {
			return nil, err
		}
		if fnIdx < 0 || fnIdx >= len(funcs) {
			return nil, fmt.Errorf("symexec: frame function index %d out of range", fnIdx)
		}
		fr := &Frame{Fn: funcs[fnIdx]}
		if fr.PC, err = r.Int(); err != nil {
			return nil, err
		}
		if fr.Locals, err = d.values(); err != nil {
			return nil, err
		}
		if fr.Stack, err = d.values(); err != nil {
			return nil, err
		}
		st.Frames[i] = fr
	}
	if st.Globals, err = d.values(); err != nil {
		return nil, err
	}
	if st.Constraints, err = snapshot.DecodeConstraints(r); err != nil {
		return nil, err
	}
	ntrace, err := r.Int()
	if err != nil {
		return nil, err
	}
	if ntrace < 0 || ntrace > r.Len() {
		return nil, fmt.Errorf("symexec: trace length %d out of range", ntrace)
	}
	if ntrace > 0 {
		st.Trace = make([]trace.Location, ntrace)
		for i := range st.Trace {
			if st.Trace[i], err = snapshot.DecodeLocation(r); err != nil {
				return nil, err
			}
		}
	}
	if st.LastModel, err = snapshot.DecodeModel(r); err != nil {
		return nil, err
	}
	nheap, err := r.Int()
	if err != nil {
		return nil, err
	}
	if nheap < 0 || nheap > r.Len() {
		return nil, fmt.Errorf("symexec: heap entry count %d out of range", nheap)
	}
	if nheap > 0 {
		st.heap = make(map[*SymBuffer]*bufCells, nheap)
	}
	for i := 0; i < nheap; i++ {
		ord, err := r.Int()
		if err != nil {
			return nil, err
		}
		if ord < 0 || ord >= len(d.bufs) {
			return nil, fmt.Errorf("symexec: heap buffer ordinal %d out of range", ord)
		}
		b := d.bufs[ord]
		c := &bufCells{}
		if c.smeared, err = r.Bool(); err != nil {
			return nil, err
		}
		nchunks, err := r.Int()
		if err != nil {
			return nil, err
		}
		if nchunks < 0 || nchunks != (b.Cap+cellChunkMask)>>cellChunkShift {
			return nil, fmt.Errorf("symexec: chunk index size %d inconsistent with capacity %d", nchunks, b.Cap)
		}
		c.chunks = make([]*cellChunk, nchunks)
		touched, err := r.Int()
		if err != nil {
			return nil, err
		}
		if touched < 0 || touched > nchunks {
			return nil, fmt.Errorf("symexec: touched chunk count %d out of range", touched)
		}
		for j := 0; j < touched; j++ {
			ci, err := r.Int()
			if err != nil {
				return nil, err
			}
			if ci < 0 || ci >= nchunks {
				return nil, fmt.Errorf("symexec: chunk index %d out of range", ci)
			}
			ch := &cellChunk{}
			for k := range ch.data {
				if ch.data[k], err = d.value(); err != nil {
					return nil, err
				}
			}
			c.chunks[ci] = ch
		}
		st.heap[b] = c
	}
	// Rebuild derived bookkeeping.
	for _, c := range st.Constraints {
		st.noteVars(c)
	}
	st.pcDigest = solver.DigestOf(st.Constraints)
	return st, nil
}
