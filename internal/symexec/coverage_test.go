package symexec

import (
	"testing"

	"repro/internal/bytecode"
)

func TestCoverageFullOnExhaustiveRun(t *testing.T) {
	src := `
func both(int x) int {
  if (x > 0) { return 1; }
  return 0;
}
func main() int {
  return both(input_int("x"));
}`
	prog := bytecode.MustCompile("cov", src)
	opts := DefaultOptions()
	opts.StopAtFirstVuln = false
	ex := New(prog, nil, opts)
	ex.Run()
	cov := ex.Coverage()
	// The compiler's implicit-return epilogue after explicit returns is
	// unreachable by construction, so full exploration tops out below
	// 100%; both live branches must be covered though.
	if cov["both"] < 0.8 {
		t.Errorf("both coverage = %.2f, want >= 0.8 (both branches explored)", cov["both"])
	}

	// A concrete argument covers strictly less of the same function.
	concrete := bytecode.MustCompile("cov1", `
func both(int x) int {
  if (x > 0) { return 1; }
  return 0;
}
func main() int {
  return both(5);
}`)
	ex2 := New(concrete, nil, DefaultOptions())
	ex2.Run()
	if one := ex2.Coverage()["both"]; one >= cov["both"] {
		t.Errorf("one-sided coverage %.2f not below exhaustive %.2f", one, cov["both"])
	}
	if got := ex.TotalCoverage(); got <= 0 || got > 1 {
		t.Errorf("total coverage = %.2f", got)
	}
}

func TestCoveragePartialWhenBranchConcrete(t *testing.T) {
	src := `
func pick(int x) int {
  if (x > 0) { return 1; }
  return 0;
}
func main() int {
  return pick(5);
}`
	prog := bytecode.MustCompile("cov2", src)
	ex := New(prog, nil, DefaultOptions())
	ex.Run()
	cov := ex.Coverage()
	if cov["pick"] >= 1.0 {
		t.Errorf("pick coverage = %.2f, want < 1.0 (dead else arm)", cov["pick"])
	}
	if cov["pick"] <= 0 {
		t.Errorf("pick coverage = %.2f, want > 0", cov["pick"])
	}
}

func TestCoverageZeroForUncalled(t *testing.T) {
	src := `
func never() int { return 42; }
func main() int { return 0; }`
	prog := bytecode.MustCompile("cov3", src)
	ex := New(prog, nil, DefaultOptions())
	ex.Run()
	if cov := ex.Coverage(); cov["never"] != 0 {
		t.Errorf("never coverage = %.2f, want 0", cov["never"])
	}
	if total := ex.TotalCoverage(); total >= 1.0 || total <= 0 {
		t.Errorf("total = %.2f", total)
	}
}
