package symexec

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/summary"
)

// runSymCalls compiles src and runs it under the given call mode/scope with
// an optional shared summary cache.
func runSymCalls(t *testing.T, src string, spec *InputSpec, opts Options, mode, scope string, cache *summary.Cache) *Result {
	t.Helper()
	prog := bytecode.MustCompile("test", src)
	pol, err := summary.ParsePolicy(scope)
	if err != nil {
		t.Fatalf("ParsePolicy(%q): %v", scope, err)
	}
	opts.Calls, err = NewCallStrategy(prog, mode, pol, cache)
	if err != nil {
		t.Fatalf("NewCallStrategy(%q): %v", mode, err)
	}
	ex := New(prog, spec, opts)
	return ex.Run()
}

func TestMineSummaryLeaf(t *testing.T) {
	prog := bytecode.MustCompile("mine", `
func absdiff(int a, int b) int {
  if (a > b) { return a - b; }
  return b - a;
}
func main() int { return absdiff(1, 2); }`)
	sum := mineSummary(prog.Fn("absdiff"))
	if sum.Failed {
		t.Fatal("mining failed on a two-path leaf")
	}
	if sum.NParams != 2 {
		t.Errorf("NParams = %d, want 2", sum.NParams)
	}
	if len(sum.Paths) != 2 {
		t.Fatalf("paths = %d, want 2 (a>b and a<=b)", len(sum.Paths))
	}
	for i, p := range sum.Paths {
		if p.Ret == nil {
			t.Errorf("path %d: int function mined without return expression", i)
		}
		if len(p.Cons) == 0 {
			t.Errorf("path %d: branchy path mined without entry constraints", i)
		}
	}
}

func TestMineSummaryAborts(t *testing.T) {
	prog := bytecode.MustCompile("mine", `
func nonlin(int a, int b) int { return a * b; }
func noisy(int a) int { print(a); return a; }
func main() int { return nonlin(2, 3) + noisy(4); }`)
	if sum := mineSummary(prog.Fn("nonlin")); !sum.Failed {
		t.Error("nonlinear multiply should abort mining")
	}
	if sum := mineSummary(prog.Fn("noisy")); !sum.Failed {
		t.Error("builtin use should abort mining")
	}
}

const summarizeSrc = `
func absdiff(int a, int b) int {
  if (a > b) { return a - b; }
  return b - a;
}
func main() int {
  int x = input_int("x");
  if (absdiff(x, 10) > 5) { assert(0); }
  return 0;
}`

func TestSummarizeMatchesInterpret(t *testing.T) {
	ref := runSym(t, summarizeSrc, nil, DefaultOptions())
	got := runSymCalls(t, summarizeSrc, nil, DefaultOptions(), CallSummarize, "all", nil)

	if ref.Found() != got.Found() {
		t.Fatalf("found: interpret=%v summarize=%v", ref.Found(), got.Found())
	}
	if !got.Found() {
		t.Fatal("assert unreachable under summarization")
	}
	rv, gv := ref.Vulns[0], got.Vulns[0]
	if rv.Kind != gv.Kind || rv.Func != gv.Func {
		t.Errorf("vuln: interpret=%s summarize=%s", rv.Site(), gv.Site())
	}
	if got.SummaryCalls == 0 {
		t.Error("summarize mode never applied a summary")
	}
	// The summarized witness must still drive the concrete VM into the fault.
	confirmWitness(t, summarizeSrc, gv)
	if m := gv.Witness.Ints["x"]; m >= 5 && m <= 15 {
		t.Errorf("witness x = %d, want |x-10| > 5", m)
	}
}

func TestSummaryCacheSharedAcrossRuns(t *testing.T) {
	cache := summary.NewCache()
	runSymCalls(t, summarizeSrc, nil, DefaultOptions(), CallSummarize, "all", cache)
	afterFirst := cache.Counters()
	if afterFirst.Mined == 0 {
		t.Fatal("first run mined nothing")
	}
	runSymCalls(t, summarizeSrc, nil, DefaultOptions(), CallSummarize, "all", cache)
	afterSecond := cache.Counters()
	if afterSecond.Mined != afterFirst.Mined {
		t.Errorf("second run re-mined: %d -> %d", afterFirst.Mined, afterSecond.Mined)
	}
	if afterSecond.Hits <= afterFirst.Hits {
		t.Errorf("second run hit nothing: hits %d -> %d", afterFirst.Hits, afterSecond.Hits)
	}
}

const havocSrc = `
global int g = 0;

func helper(int n) void {
  g = n;
  assert(n < 100);
  return;
}
func main() int {
  int x = input_int("x");
  helper(x);
  if (g > 50) { return 1; }
  return 0;
}`

func TestHavocOutOfScope(t *testing.T) {
	// Full interpretation proves the assert reachable.
	ref := runSym(t, havocSrc, nil, DefaultOptions())
	if !ref.Found() || ref.Vulns[0].Kind != interp.FaultAssert {
		t.Fatalf("interpret baseline should find the assert: %+v", ref.Vulns)
	}

	// With helper out of scope the call is havocked: the documented
	// soundness trade is that faults inside havocked code go undetected,
	// while its data effects (the write to g) are over-approximated, so
	// both g-branches stay explorable.
	got := runSymCalls(t, havocSrc, nil, DefaultOptions(), CallHavoc, "all,-helper", nil)
	if got.Found() {
		t.Errorf("fault inside havocked callee should be invisible: %+v", got.Vulns)
	}
	if got.HavocCalls == 0 {
		t.Error("havoc mode never havocked the out-of-scope call")
	}
	if got.Paths < 2 {
		t.Errorf("paths = %d, want >= 2 (havocked g must keep both branches live)", got.Paths)
	}
}

func TestHavocScopePolicyInterpretsInScope(t *testing.T) {
	// Same program, but the policy keeps helper in scope: havoc mode must
	// behave exactly like interpretation.
	got := runSymCalls(t, havocSrc, nil, DefaultOptions(), CallHavoc, "all", nil)
	if !got.Found() || got.Vulns[0].Kind != interp.FaultAssert {
		t.Fatalf("in-scope call must be interpreted: %+v", got.Vulns)
	}
	if got.HavocCalls != 0 {
		t.Errorf("HavocCalls = %d, want 0 under full scope", got.HavocCalls)
	}
}

func TestDepthExhaustionDistinct(t *testing.T) {
	src := `
func r(int n) int { return r(n + 1); }
func main() int { return r(0); }`
	opts := DefaultOptions()
	opts.MaxDepth = 16
	opts.MaxSteps = 100_000
	res := runSym(t, src, nil, opts)
	if res.Found() {
		t.Fatalf("unexpected vulnerability: %+v", res.Vulns)
	}
	if res.DepthExhausted != 1 {
		t.Errorf("DepthExhausted = %d, want 1", res.DepthExhausted)
	}

	// A program that never hits the bound reports zero.
	clean := runSym(t, `func main() int { return 1; }`, nil, DefaultOptions())
	if clean.DepthExhausted != 0 {
		t.Errorf("DepthExhausted = %d on shallow program, want 0", clean.DepthExhausted)
	}
}

func TestNewCallStrategyErrors(t *testing.T) {
	prog := bytecode.MustCompile("modes", `func main() int { return 0; }`)
	if s, err := NewCallStrategy(prog, "", nil, nil); err != nil || s != nil {
		t.Errorf("empty mode: %v, %v", s, err)
	}
	if s, err := NewCallStrategy(prog, CallInterpret, nil, nil); err != nil || s != nil {
		t.Errorf("interpret mode: %v, %v", s, err)
	}
	if _, err := NewCallStrategy(prog, "bogus", nil, nil); err == nil {
		t.Error("unknown mode should error")
	}
}
