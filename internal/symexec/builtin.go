package symexec

import (
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/solver"
)

// stepBuiltin executes a builtin call symbolically. The buffer, assertion,
// abort and division oracles live here: each issues satisfiability queries
// of the form pc ∧ fault-condition and reports a vulnerability (with model
// and witness) when satisfiable.
func (ex *Executor) stepBuiltin(st *State, b minic.Builtin, nargs int, pos minic.Pos) (children []*State, suspend, done bool) {
	args := make([]Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = st.pop()
	}
	switch b {
	case minic.BuiltinLen:
		st.push(LinVal(args[0].Str.LenExpr()))

	case minic.BuiltinChar:
		return ex.stepChar(st, args[0].Str, args[1], pos)

	case minic.BuiltinSubstr:
		st.push(ex.stepSubstr(st, args[0].Str, args[1], args[2]))

	case minic.BuiltinConcat:
		st.push(ex.concatStrings(st, args[0].Str, args[1].Str))

	case minic.BuiltinStreq:
		return ex.stringEq(st, args[0].Str, args[1].Str, 1, 0)

	case minic.BuiltinAtoi:
		s := args[0].Str
		if s.IsLit {
			st.push(IntVal(atoiC(s.Lit)))
			break
		}
		// Symbolic string: the parsed value is over-approximated by a
		// fresh integer (content-to-number relations are beyond the
		// linear fragment).
		fresh := ex.newVar("atoi(" + s.Label + ")")
		if st.LastModel != nil {
			ex.extendModel(st, fresh, atoiC(ex.inputs.materialize(s, st.LastModel)))
		}
		st.push(LinVal(solver.VarExpr(fresh)))

	case minic.BuiltinInputInt:
		name := mustLit(args[0])
		v := ex.inputs.intInput(name)
		if sv, _, ok := v.Lin.SingleVar(); ok {
			if seed, has := ex.inputs.seedInt(name); has {
				ex.seedModelValue(st, sv, seed)
			}
		}
		st.push(v)
	case minic.BuiltinInputString:
		name := mustLit(args[0])
		v := ex.inputs.strInput(name)
		ex.maybeSeedStr(st, v, 's', name, -1)
		st.push(v)
	case minic.BuiltinEnv:
		name := mustLit(args[0])
		v := ex.inputs.envInput(name)
		ex.maybeSeedStr(st, v, 'e', name, -1)
		st.push(v)
	case minic.BuiltinArg:
		if idx, ok := args[0].IsConcreteInt(); ok {
			v := ex.inputs.argInput(idx)
			ex.maybeSeedStr(st, v, 'a', "", idx)
			st.push(v)
		} else {
			// Symbolic argument index: unusual; over-approximate with an
			// anonymous symbolic string.
			st.push(SymStrVal(ex.freshStr("argv", ex.inputs.spec.strLenMax("argv"))))
		}
	case minic.BuiltinNargs:
		st.push(IntVal(int64(ex.inputs.spec.NArgs)))

	case minic.BuiltinPrint:
		// No effect on symbolic state.

	case minic.BuiltinBufWrite:
		return ex.stepBufWrite(st, args[0].Buf, args[1], args[2], pos)

	case minic.BuiltinBufRead:
		return ex.stepBufRead(st, args[0].Buf, args[1], pos)

	case minic.BuiltinBufCap:
		st.push(IntVal(int64(args[0].Buf.Cap)))

	case minic.BuiltinBufStr:
		st.push(ex.stepBufStr(st, args[0].Buf, args[1]))

	case minic.BuiltinAssert:
		v := args[0]
		if c, ok := v.IsConcreteInt(); ok {
			if c == 0 {
				okSat, m := ex.satisfiable(st)
				if okSat {
					ex.report(st, interp.FaultAssert, pos, m)
				}
				st.Status = StatusFaulted
				return nil, false, true
			}
			break
		}
		// Symbolic assertion argument (comparisons are concretized before
		// builtins, so this is a linear expression): fails iff it can be
		// zero.
		zero := solver.Constraint{E: v.Lin, Op: solver.OpEq}
		if okSat, m := ex.satisfiable(st, zero); okSat {
			ex.report(st, interp.FaultAssert, pos, m, zero)
			if ex.stopped {
				return nil, false, false
			}
		}
		nz := zero.Negate()
		okSat, m := ex.satisfiable(st, nz)
		if !okSat {
			st.Status = StatusInfeasible
			return nil, false, true
		}
		ex.commit(st, m, nz)

	case minic.BuiltinAbort:
		okSat, m := ex.satisfiable(st)
		if okSat {
			ex.report(st, interp.FaultAbort, pos, m)
		}
		st.Status = StatusFaulted
		return nil, false, true
	}
	return nil, false, false
}

// mustLit extracts a literal string argument (channel names are always
// literals in MiniC programs).
func mustLit(v Value) string {
	if v.Str != nil && v.Str.IsLit {
		return v.Str.Lit
	}
	return ""
}

// atoiC matches the concrete VM's C-style atoi.
func atoiC(s string) int64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
	}
	if i == start {
		return 0
	}
	if neg {
		return -v
	}
	return v
}

// stepChar implements char(s, i) with the string-overread oracle.
func (ex *Executor) stepChar(st *State, s *SymString, iv Value, pos minic.Pos) (children []*State, suspend, done bool) {
	ic, iok := iv.IsConcreteInt()
	if s.IsLit && iok {
		if ic < 0 || ic >= int64(len(s.Lit)) {
			okSat, m := ex.satisfiable(st)
			if okSat {
				ex.report(st, interp.FaultStringIndex, pos, m)
			}
			st.Status = StatusFaulted
			return nil, false, true
		}
		st.push(IntVal(int64(s.Lit[ic])))
		return nil, false, false
	}
	lenE := s.LenExpr()
	// Oracle: index can escape [0, len).
	if ex.Opts.CheckStringReads {
		over := solver.Ge(iv.Lin, lenE)
		if okSat, m := ex.satisfiable(st, over); okSat {
			ex.report(st, interp.FaultStringIndex, pos, m, over)
			if ex.stopped {
				return nil, false, false
			}
		}
		if !iok || ic < 0 {
			under := solver.Lt(iv.Lin, solver.ConstExpr(0))
			if okSat, m := ex.satisfiable(st, under); okSat {
				ex.report(st, interp.FaultStringIndex, pos, m, under)
				if ex.stopped {
					return nil, false, false
				}
			}
		}
	}
	// Continue on the in-bounds path.
	inB := []solver.Constraint{
		solver.Ge(iv.Lin, solver.ConstExpr(0)),
		solver.Lt(iv.Lin, lenE),
	}
	okSat, m := ex.satisfiable(st, inB...)
	if !okSat {
		st.Status = StatusInfeasible
		return nil, false, true
	}
	ex.commit(st, m, inB...)

	switch {
	case !s.IsLit && iok:
		// The canonical case: symbolic string, concrete index — a
		// deterministic byte variable.
		bv := ex.inputs.byteVar(s, ic)
		if sb, ok := ex.inputs.seededByte(s.ID, ic); ok {
			ex.seedModelValue(st, bv, sb)
		}
		st.push(LinVal(solver.VarExpr(bv)))
	case s.IsLit:
		// Concrete string, symbolic index: over-approximate with a fresh
		// byte, seeding the model with the actual byte at the model index.
		fresh := ex.newVarBounded("char", 0, 255)
		if st.LastModel != nil {
			idx := iv.Lin.Eval(st.LastModel)
			if idx >= 0 && idx < int64(len(s.Lit)) {
				ex.extendModel(st, fresh, int64(s.Lit[idx]))
			}
		}
		st.push(LinVal(solver.VarExpr(fresh)))
	default:
		// Symbolic string and index: fresh unconstrained byte.
		fresh := ex.newVarBounded("char", 0, 255)
		if st.LastModel != nil {
			ex.extendModel(st, fresh, int64(defaultWitnessByte))
		}
		st.push(LinVal(solver.VarExpr(fresh)))
	}
	return nil, false, false
}

// stepSubstr implements substr with the concrete VM's clamped semantics;
// symbolic operands produce a fresh string with a bounded length.
func (ex *Executor) stepSubstr(st *State, s *SymString, iv, jv Value) Value {
	ic, iok := iv.IsConcreteInt()
	jc, jok := jv.IsConcreteInt()
	if s.IsLit && iok && jok {
		str := s.Lit
		i, j := ic, jc
		if i < 0 {
			i = 0
		}
		if j > int64(len(str)) {
			j = int64(len(str))
		}
		if i > j {
			i = j
		}
		return StrVal(str[i:j])
	}
	maxLen := ex.strMaxLen(s)
	if iok && jok {
		if w := jc - ic; w >= 0 && w < maxLen {
			maxLen = w
		} else if w < 0 {
			maxLen = 0
		}
	}
	out := ex.freshStr("substr", maxLen)
	// The result is never longer than the source.
	addPathConstraint(st, solver.Le(solver.VarExpr(out.LenVar), s.LenExpr()))
	if st.LastModel != nil {
		srcLen := s.LenExpr().Eval(st.LastModel)
		v := int64(0)
		if iok && jok {
			v = jc - ic
			if v < 0 {
				v = 0
			}
			if v > srcLen {
				v = srcLen
			}
		}
		ex.extendModel(st, out.LenVar, v)
	}
	return SymStrVal(out)
}

// stepBufWrite implements bufwrite with the buffer-overflow oracle — the
// primary vulnerability detector for the four evaluation programs.
func (ex *Executor) stepBufWrite(st *State, buf *SymBuffer, iv, val Value, pos minic.Pos) (children []*State, suspend, done bool) {
	capC := solver.ConstExpr(int64(buf.Cap))
	if ic, ok := iv.IsConcreteInt(); ok {
		if ic < 0 || ic >= int64(buf.Cap) {
			// Definite overflow on this path: the failure point.
			okSat, m := ex.satisfiable(st)
			if okSat {
				ex.report(st, interp.FaultBufferOverflow, pos, m)
			}
			st.Status = StatusFaulted
			return nil, false, true
		}
		if !st.bufSmeared(buf) {
			st.setBufCell(buf, int(ic), val)
		}
		return nil, false, false
	}
	// Symbolic index: can it overflow?
	over := solver.Ge(iv.Lin, capC)
	if okSat, m := ex.satisfiable(st, over); okSat {
		ex.report(st, interp.FaultBufferOverflow, pos, m, over)
		if ex.stopped {
			return nil, false, false
		}
	}
	under := solver.Lt(iv.Lin, solver.ConstExpr(0))
	if okSat, m := ex.satisfiable(st, under); okSat {
		ex.report(st, interp.FaultBufferOverflow, pos, m, under)
		if ex.stopped {
			return nil, false, false
		}
	}
	inB := []solver.Constraint{
		solver.Ge(iv.Lin, solver.ConstExpr(0)),
		solver.Lt(iv.Lin, capC),
	}
	okSat, m := ex.satisfiable(st, inB...)
	if !okSat {
		st.Status = StatusInfeasible
		return nil, false, true
	}
	ex.commit(st, m, inB...)
	// Unknown destination cell: the buffer's precise contents are lost.
	st.bufCellsForWrite(buf).smeared = true
	return nil, false, false
}

// stepBufRead implements bufread with the out-of-bounds-read oracle.
func (ex *Executor) stepBufRead(st *State, buf *SymBuffer, iv Value, pos minic.Pos) (children []*State, suspend, done bool) {
	if ic, ok := iv.IsConcreteInt(); ok {
		if ic < 0 || ic >= int64(buf.Cap) {
			okSat, m := ex.satisfiable(st)
			if okSat {
				ex.report(st, interp.FaultBufferOOBRead, pos, m)
			}
			st.Status = StatusFaulted
			return nil, false, true
		}
		if st.bufSmeared(buf) {
			fresh := ex.newVar("bufcell")
			if st.LastModel != nil {
				ex.extendModel(st, fresh, 0)
			}
			st.push(LinVal(solver.VarExpr(fresh)))
			return nil, false, false
		}
		st.push(st.bufCell(buf, int(ic)))
		return nil, false, false
	}
	capC := solver.ConstExpr(int64(buf.Cap))
	over := solver.Ge(iv.Lin, capC)
	if okSat, m := ex.satisfiable(st, over); okSat {
		ex.report(st, interp.FaultBufferOOBRead, pos, m, over)
		if ex.stopped {
			return nil, false, false
		}
	}
	under := solver.Lt(iv.Lin, solver.ConstExpr(0))
	if okSat, m := ex.satisfiable(st, under); okSat {
		ex.report(st, interp.FaultBufferOOBRead, pos, m, under)
		if ex.stopped {
			return nil, false, false
		}
	}
	inB := []solver.Constraint{
		solver.Ge(iv.Lin, solver.ConstExpr(0)),
		solver.Lt(iv.Lin, capC),
	}
	okSat, m := ex.satisfiable(st, inB...)
	if !okSat {
		st.Status = StatusInfeasible
		return nil, false, true
	}
	ex.commit(st, m, inB...)
	fresh := ex.newVar("bufcell")
	if st.LastModel != nil {
		ex.extendModel(st, fresh, 0)
	}
	st.push(LinVal(solver.VarExpr(fresh)))
	return nil, false, false
}

// stepBufStr reads the buffer prefix as a string; precise when everything
// is concrete, a fresh symbolic string otherwise.
func (ex *Executor) stepBufStr(st *State, buf *SymBuffer, nv Value) Value {
	nc, nok := nv.IsConcreteInt()
	if nok && !st.bufSmeared(buf) {
		if nc < 0 {
			nc = 0
		}
		if nc > int64(buf.Cap) {
			nc = int64(buf.Cap)
		}
		bs := make([]byte, 0, nc)
		concrete := true
		for i := int64(0); i < nc; i++ {
			if c, ok := st.bufCell(buf, int(i)).IsConcreteInt(); ok {
				bs = append(bs, byte(c))
			} else {
				concrete = false
				break
			}
		}
		if concrete {
			return StrVal(string(bs))
		}
	}
	maxLen := int64(buf.Cap)
	if nok && nc >= 0 && nc < maxLen {
		maxLen = nc
	}
	out := ex.freshStr("bufstr", maxLen)
	if st.LastModel != nil {
		ex.extendModel(st, out.LenVar, 0)
	}
	return SymStrVal(out)
}
