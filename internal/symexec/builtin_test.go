package symexec

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/interp"
)

func TestSymSubstrBounds(t *testing.T) {
	// substr of a symbolic string yields a string no longer than the
	// source; asserting otherwise is unreachable.
	src := `
func main() int {
  string s = input_string("s");
  string sub = substr(s, 0, 4);
  if (len(sub) > len(s)) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 16}, DefaultOptions())
	if res.Found() {
		t.Errorf("substr longer than source deemed reachable: %+v", res.Vulns)
	}
}

func TestSymSubstrConcrete(t *testing.T) {
	src := `
func main() int {
  string s = substr("hello world", 6, 11);
  if (s == "world") { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Error("concrete substr mis-evaluated")
	}
}

func TestSymAtoiOverApproximation(t *testing.T) {
	// atoi over a symbolic string is a fresh integer: both outcomes of a
	// comparison on it must be explorable.
	src := `
func main() int {
  string s = input_string("s");
  int v = atoi(s);
  if (v > 100) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if !res.Found() {
		t.Error("atoi over-approximation blocked the failing branch")
	}
}

func TestSymBufStrConcrete(t *testing.T) {
	src := `
func main() int {
  buf b[8];
  bufwrite(b, 0, 'h');
  bufwrite(b, 1, 'i');
  if (bufstr(b, 2) == "hi") { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Error("concrete bufstr mis-evaluated")
	}
}

func TestSymSmearedBufferRead(t *testing.T) {
	// After a symbolic-index write the buffer smears; reads still work
	// (fresh values) and the state keeps executing.
	src := `
func main() int {
  int i = input_int("i");
  buf b[8];
  if (i >= 0 && i < 8) {
    bufwrite(b, i, 42);
    int back = bufread(b, 0);
    if (back == 42) { return 1; }
    return 2;
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if res.Found() {
		t.Errorf("guarded buffer access reported a vulnerability: %+v", res.Vulns[0].Site())
	}
	if res.Paths < 2 {
		t.Errorf("paths = %d, want branching on the smeared read", res.Paths)
	}
}

func TestSymGuardedDivision(t *testing.T) {
	src := `
func main() int {
  int d = input_int("d");
  if (d != 0) {
    return 100 / d;
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if res.Found() {
		t.Errorf("guarded division reported div-zero: %+v", res.Vulns)
	}
}

func TestSymModConstraints(t *testing.T) {
	// x % 7 == 0 with x in a narrow range pins the witness to a multiple
	// of 7.
	src := `
func main() int {
  int x = input_int("x");
  if (x >= 50 && x <= 60) {
    if (x % 7 == 0) { assert(0); }
  }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	if x := res.Vulns[0].Witness.Ints["x"]; x != 56 {
		t.Errorf("witness x = %d, want 56", x)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymNonlinearOverApprox(t *testing.T) {
	// A product of two symbolic ints is over-approximated; both branches
	// remain explorable and found bugs still carry valid (replayable or
	// not) witnesses — here the sat check suffices.
	src := `
func main() int {
  int a = input_int("a");
  int b = input_int("b");
  int p = a * b;
  if (p > 10) { abort(); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() {
		t.Error("nonlinear over-approximation blocked the abort branch")
	}
}

func TestSymNargsAndArgs(t *testing.T) {
	src := `
func main() int {
  if (nargs() == 3) { assert(0); }
  return 0;
}`
	res := runSym(t, src, &InputSpec{NArgs: 3}, DefaultOptions())
	if !res.Found() {
		t.Error("nargs mismatch")
	}
	res = runSym(t, src, &InputSpec{NArgs: 2}, DefaultOptions())
	if res.Found() {
		t.Error("nargs should be 2")
	}
}

func TestSymStringNeqBranch(t *testing.T) {
	// The not-equal branch of a string comparison keeps exploring.
	src := `
func main() int {
  string s = input_string("opt");
  if (s != "-q") {
    assert(0);
  }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 4}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not-equal branch unexplored")
	}
}

func TestSymMaxDepthTerminates(t *testing.T) {
	src := `
func r(int n) int { return r(n + 1); }
func main() int { return r(0); }`
	opts := DefaultOptions()
	opts.MaxDepth = 16
	opts.MaxSteps = 100_000
	res := runSym(t, src, nil, opts)
	if res.Paths != 1 {
		t.Errorf("deep recursion: paths = %d, want 1 (terminated at depth cap)", res.Paths)
	}
	if res.StepLimited {
		t.Error("recursion was not cut by the depth cap")
	}
}

func TestSymSymbolicInputsListing(t *testing.T) {
	src := `
func main() int {
  int a = input_int("alpha");
  string s = input_string("sigma");
  string e = env("EV");
  if (a > 0 && len(s) > 0 && len(e) > 0) { return 1; }
  return 0;
}`
	prog := bytecode.MustCompile("list", src)
	ex := New(prog, nil, DefaultOptions())
	ex.Run()
	names := strings.Join(ex.SymbolicInputs(), ",")
	for _, want := range []string{"alpha", "sigma", "EV"} {
		if !strings.Contains(names, want) {
			t.Errorf("symbolic inputs %q missing %q", names, want)
		}
	}
}

func TestSymVulnerabilityDedup(t *testing.T) {
	// The same fault site on multiple paths reports once.
	src := `
func sink(int v) void {
  if (v >= 1) { assert(0); }
  return;
}
func main() int {
  int a = input_int("a");
  if (a > 10) { sink(a); } else { sink(a + 100); }
  return 0;
}`
	opts := DefaultOptions()
	opts.StopAtFirstVuln = false
	res := runSym(t, src, nil, opts)
	if len(res.Vulns) != 1 {
		t.Errorf("vulns = %d, want 1 (deduplicated by site)", len(res.Vulns))
	}
}

func TestSymDistinctSitesBothReported(t *testing.T) {
	src := `
func s1(int v) void { if (v > 5) { assert(0); } return; }
func s2(int v) void { if (v < -5) { assert(0); } return; }
func main() int {
  int a = input_int("a");
  s1(a);
  s2(a);
  return 0;
}`
	opts := DefaultOptions()
	opts.StopAtFirstVuln = false
	res := runSym(t, src, nil, opts)
	funcs := map[string]bool{}
	for _, v := range res.Vulns {
		funcs[v.Func] = true
	}
	if !funcs["s1"] || !funcs["s2"] {
		t.Errorf("sites found: %v, want both s1 and s2", funcs)
	}
}

func TestSymWitnessRespectsByteConstraints(t *testing.T) {
	// Three fixed bytes: the witness must carry them exactly.
	src := `
func main() int {
  string s = input_string("s");
  if (len(s) >= 3) {
    if (char(s, 0) == 'G') {
      if (char(s, 1) == 'E') {
        if (char(s, 2) == 'T') {
          abort();
        }
      }
    }
  }
  return 0;
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 8}, DefaultOptions())
	if !res.Found() {
		t.Fatal("not found")
	}
	w := res.Vulns[0].Witness.Strs["s"]
	if !strings.HasPrefix(w, "GET") {
		t.Errorf("witness = %q, want GET prefix", w)
	}
	confirmWitness(t, src, res.Vulns[0])
}

func TestSymPrintIsNoop(t *testing.T) {
	src := `
func main() int {
  int a = input_int("a");
  print(a);
  print("literal");
  if (a == 9) { assert(0); }
  return 0;
}`
	res := runSym(t, src, nil, DefaultOptions())
	if !res.Found() || res.Vulns[0].Witness.Ints["a"] != 9 {
		t.Errorf("print interfered with execution: %+v", res.Vulns)
	}
}

func TestSymExhaustionCountsAccurate(t *testing.T) {
	src := `
func process(string s) int {
  int acc = 0;
  int i = 0;
  while (i < len(s)) {
    int c = char(s, i);
    if (c == 'a') { acc = acc + 1; }
    else { if (c == 'b') { acc = acc + 2; } else { acc = acc + 3; } }
    i = i + 1;
  }
  return acc;
}
func main() int { return process(input_string("s")); }`
	opts := DefaultOptions()
	opts.MaxStates = 100
	res := runSym(t, src, &InputSpec{MaxStrLen: 32}, opts)
	if !res.Exhausted {
		t.Fatalf("expected exhaustion: %+v", res)
	}
	if res.MaxLive < 100 {
		t.Errorf("MaxLive = %d, want >= MaxStates", res.MaxLive)
	}
	if res.StatesCreated <= res.Paths {
		t.Errorf("states created (%d) should exceed completed paths (%d) at exhaustion",
			res.StatesCreated, res.Paths)
	}
}

func TestSymConfirmAllAppsWitnessesOnce(t *testing.T) {
	// A cheap single-shot sanity run of the msgtool extension program
	// through the raw executor (mode concretized to decode).
	src := `
func unpack(string body) int {
  buf payload[16];
  int i = 0;
  while (i < len(body)) {
    bufwrite(payload, i, char(body, i));
    i = i + 1;
  }
  return i;
}
func main() int {
  return unpack(input_string("body"));
}`
	res := runSym(t, src, &InputSpec{MaxStrLen: 32}, DefaultOptions())
	if !res.Found() || res.Vulns[0].Kind != interp.FaultBufferOverflow {
		t.Fatalf("res = %+v", res.Vulns)
	}
	confirmWitness(t, src, res.Vulns[0])
}
