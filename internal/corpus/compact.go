package corpus

import (
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// CompactResult summarizes one compaction pass.
type CompactResult struct {
	SegmentsBefore int
	SegmentsAfter  int
	BytesBefore    int64
	BytesAfter     int64
	Runs           int
}

// Compact rewrites the store's segments into freshly packed ones: many
// small segments (one per concurrent writer, or per short collection
// session) merge into full-size segments with one shared dictionary each.
// Runs keep their manifest order. The rewrite is crash-safe in the same
// way sealing is — new segments land via temp+rename, the manifest swap is
// atomic, and only then are the old segment files deleted — so a crash at
// any point leaves a readable store (worst case: both old and new segments
// visible in the directory, with the manifest referencing exactly one
// generation).
func (s *Store) Compact(opts Options) (*CompactResult, error) {
	old := s.Segments()
	res := &CompactResult{SegmentsBefore: len(old), Runs: s.TotalRuns()}
	for _, info := range old {
		res.BytesBefore += info.Bytes
	}
	if len(old) == 0 {
		return res, nil
	}

	w := s.NewWriter(opts)
	it := s.Iter()
	defer it.Close()
	for {
		run, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			w.abort(nil)
			return nil, err
		}
		if err := w.Append(run); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	oldNames := make(map[string]bool, len(old))
	for _, info := range old {
		oldNames[info.Name] = true
	}
	if err := s.dropSegments(oldNames); err != nil {
		return nil, err
	}
	for name := range oldNames {
		os.Remove(filepath.Join(s.dir, name))
	}

	for _, info := range s.Segments() {
		res.SegmentsAfter++
		res.BytesAfter += info.Bytes
	}
	if s.Obs != nil {
		s.Obs.Metrics.Counter(obs.MetricCorpusCompactions).Inc()
	}
	return res, nil
}
