package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SegmentReport is the outcome of validating one segment file.
type SegmentReport struct {
	Name     string
	Runs     int
	Records  int
	Blocks   int
	Bytes    int64
	Problems []string
}

// OK reports whether the segment validated cleanly.
func (r *SegmentReport) OK() bool { return len(r.Problems) == 0 }

// VerifyReport aggregates a whole-store validation.
type VerifyReport struct {
	Segments []SegmentReport
	// Problems are store-level findings (manifest inconsistencies, stray
	// temp files); per-segment findings live on the segment reports.
	Problems []string
}

// OK reports whether the store validated cleanly.
func (r *VerifyReport) OK() bool {
	if len(r.Problems) > 0 {
		return false
	}
	for i := range r.Segments {
		if !r.Segments[i].OK() {
			return false
		}
	}
	return true
}

// Summary renders a one-line validation summary.
func (r *VerifyReport) Summary() string {
	runs, records, blocks, problems := 0, 0, 0, len(r.Problems)
	for i := range r.Segments {
		s := &r.Segments[i]
		runs += s.Runs
		records += s.Records
		blocks += s.Blocks
		problems += len(s.Problems)
	}
	return fmt.Sprintf("%d segments, %d blocks, %d runs, %d records, %d problems",
		len(r.Segments), blocks, runs, records, problems)
}

// AllProblems flattens store- and segment-level findings.
func (r *VerifyReport) AllProblems() []string {
	out := append([]string(nil), r.Problems...)
	for i := range r.Segments {
		for _, p := range r.Segments[i].Problems {
			out = append(out, r.Segments[i].Name+": "+p)
		}
	}
	return out
}

// VerifySegmentFile fully validates one segment: magic, trailer, footer
// checksum, every block's frame header, payload CRC, decompressed length,
// and a complete record decode against the footer dictionaries. It is the
// deep check cmd/corpus verify and cmd/tracecheck run; a truncated or
// bit-flipped segment comes back with Problems (or an open error when even
// the footer is unreadable).
func VerifySegmentFile(path string) (*SegmentReport, error) {
	rep := &SegmentReport{Name: filepath.Base(path)}
	seg, err := openSegment(path)
	if err != nil {
		return rep, err
	}
	rep.Bytes = seg.info.Bytes
	rep.Blocks = len(seg.footer.Blocks)
	flag := func(format string, args ...any) {
		if len(rep.Problems) < 20 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}

	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()

	var raw []byte
	runs, records := 0, 0
	nextOffset := int64(len(segMagic))
	nextFirst := 0
	for bi, b := range seg.footer.Blocks {
		if b.Offset != nextOffset {
			flag("block %d: offset %d, want contiguous %d", bi, b.Offset, nextOffset)
		}
		if b.FirstRun != nextFirst {
			flag("block %d: first run %d, want %d", bi, b.FirstRun, nextFirst)
		}
		nextFirst = b.FirstRun + b.Runs
		raw, err = readBlock(f, b, raw)
		if err != nil {
			flag("block %d: %v", bi, err)
			break // offsets downstream are unreliable after a bad block
		}
		// Frame header length varies with the varint widths; recompute it.
		hdrLen := uvarintLen(uint64(b.RawLen)) + uvarintLen(uint64(b.CompLen)) + uvarintLen(uint64(b.CRC))
		nextOffset = b.Offset + int64(hdrLen) + int64(b.CompLen)
		decoded, derr := decodeBlock(raw, seg, b.Runs, nil)
		if derr != nil {
			flag("block %d: %v", bi, derr)
			continue
		}
		runs += len(decoded)
		for _, run := range decoded {
			records += len(run.Records)
		}
	}
	rep.Runs, rep.Records = runs, records
	if runs != seg.footer.Runs {
		flag("decoded %d runs, footer declares %d", runs, seg.footer.Runs)
	}
	if records != seg.footer.Records {
		flag("decoded %d records, footer declares %d", records, seg.footer.Records)
	}
	return rep, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Verify validates the whole store: every manifest segment must open,
// checksum, and decode cleanly and agree with its manifest entry; stray
// temp files and unmanifested segments are reported as store-level
// problems. The error return is reserved for I/O failures on the store
// directory itself — corruption is reported, not returned.
func (s *Store) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	flag := func(format string, args ...any) {
		if len(rep.Problems) < 20 {
			rep.Problems = append(rep.Problems, fmt.Sprintf(format, args...))
		}
	}
	manifested := make(map[string]bool)
	for _, info := range s.Segments() {
		manifested[info.Name] = true
		segRep, err := VerifySegmentFile(filepath.Join(s.dir, info.Name))
		if err != nil {
			segRep.Problems = append(segRep.Problems, err.Error())
		}
		if err == nil {
			if segRep.Runs != info.Runs {
				segRep.Problems = append(segRep.Problems,
					fmt.Sprintf("manifest declares %d runs, segment holds %d", info.Runs, segRep.Runs))
			}
			if segRep.Bytes != info.Bytes {
				segRep.Problems = append(segRep.Problems,
					fmt.Sprintf("manifest declares %d bytes, file is %d", info.Bytes, segRep.Bytes))
			}
		}
		rep.Segments = append(rep.Segments, *segRep)
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return rep, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == manifestName || e.IsDir():
		case strings.Contains(name, ".tmp-"):
			flag("stray temp file %s (crashed writer; safe to delete)", name)
		case strings.HasSuffix(name, ".seg") && !manifested[name]:
			flag("segment %s on disk but not in manifest", name)
		}
	}
	return rep, nil
}
