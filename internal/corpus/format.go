// Package corpus implements a durable, segmented, append-only trace store:
// the on-disk home of the runtime logs the Program Monitor emits (§III-B)
// once corpora outgrow the in-memory trace.Corpus + one-blob JSON file of
// internal/trace. A store is a directory holding a small JSON manifest and
// a set of immutable segment files; each segment packs length-prefixed,
// varint-encoded, string-interned run records into gzip-compressed blocks
// and ends with a footer index (run counts, per-block byte offsets and
// CRC32 checksums, the segment's location and variable dictionaries) so
// readers can stream block-by-block or fetch single runs without ever
// materializing the corpus. Writers seal segments through a temp-file +
// rename, so a crash never leaves a torn segment visible.
package corpus

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/trace"
)

// On-disk constants. The magic strings are 8 bytes so both ends of a
// segment are self-identifying; bumping the format bumps the digit.
const (
	segMagic     = "SSEGv01\x00" // first 8 bytes of every segment file
	trailerMagic = "SSEGFTR1"    // last 8 bytes of every sealed segment
	trailerSize  = 4 + 8 + 8     // footer CRC32 + footer length + magic

	manifestName    = "manifest.json"
	manifestVersion = 1

	// DefaultBlockBytes is the raw (uncompressed) payload target per
	// compressed block — the unit of streaming reads, and therefore the
	// reader's peak decode buffer.
	DefaultBlockBytes = 256 << 10
	// DefaultSegmentBytes is the compressed-byte target at which a writer
	// seals its segment and rolls to a new one (the issue's 4–32 MiB
	// window; small enough to bound per-segment dictionaries, large
	// enough that footer overhead vanishes).
	DefaultSegmentBytes = 8 << 20
)

// dict interns the strings a segment's records repeat on every event:
// instrumentation locations and variable names. IDs are dense and assigned
// in first-use order during encoding; the tables are serialized in the
// segment footer and are the only way to decode the segment's records.
type dict struct {
	locs   []trace.Location
	locIDs map[trace.Location]uint32
	vars   []string
	varIDs map[string]uint32
}

func newDict() *dict {
	return &dict{
		locIDs: make(map[trace.Location]uint32),
		varIDs: make(map[string]uint32),
	}
}

func (d *dict) locID(l trace.Location) uint32 {
	id, ok := d.locIDs[l]
	if !ok {
		id = uint32(len(d.locs))
		d.locIDs[l] = id
		d.locs = append(d.locs, l)
	}
	return id
}

func (d *dict) varID(name string) uint32 {
	id, ok := d.varIDs[name]
	if !ok {
		id = uint32(len(d.vars))
		d.varIDs[name] = id
		d.vars = append(d.vars, name)
	}
	return id
}

// Run record layout (all integers varint unless noted):
//
//	uvarint  run ID
//	byte     flags (bit0: faulty)
//	[faulty] string faultKind, string faultFunc   (uvarint len + bytes)
//	uvarint  record count
//	records: uvarint locID
//	         uvarint observation count
//	         obs:    uvarint varID
//	                 byte meta (bits 0-1: VarClass, bit 2: string value)
//	                 int value:    zigzag varint
//	                 string value: uvarint len + bytes

const (
	runFlagFaulty = 1 << 0
	obsMetaString = 1 << 2
	obsClassMask  = 0x3
)

// appendRun encodes one run onto dst, interning strings through d.
func appendRun(dst []byte, run *trace.Run, d *dict) []byte {
	dst = binary.AppendUvarint(dst, uint64(run.ID))
	var flags byte
	if run.Faulty {
		flags |= runFlagFaulty
	}
	dst = append(dst, flags)
	if run.Faulty {
		dst = appendString(dst, run.FaultKind)
		dst = appendString(dst, run.FaultFunc)
	}
	dst = binary.AppendUvarint(dst, uint64(len(run.Records)))
	for _, rec := range run.Records {
		dst = binary.AppendUvarint(dst, uint64(d.locID(rec.Loc)))
		dst = binary.AppendUvarint(dst, uint64(len(rec.Obs)))
		for _, ob := range rec.Obs {
			dst = binary.AppendUvarint(dst, uint64(d.varID(ob.Var)))
			meta := byte(ob.Class) & obsClassMask
			if ob.Kind == trace.ValueString {
				meta |= obsMetaString
			}
			dst = append(dst, meta)
			if ob.Kind == trace.ValueString {
				dst = appendString(dst, ob.Str)
			} else {
				dst = binary.AppendVarint(dst, ob.Int)
			}
		}
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeRun decodes one run using the segment's dictionary tables. Counts
// are sanity-bounded by the remaining bytes (every record and observation
// costs at least two bytes) so corrupt headers cannot force giant
// allocations.
func decodeRun(r *ByteReader, locs []trace.Location, vars []string) (*trace.Run, error) {
	id, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if id > math.MaxInt32 {
		return nil, fmt.Errorf("corpus: implausible run ID %d", id)
	}
	flags, err := r.Byte()
	if err != nil {
		return nil, err
	}
	if flags&^byte(runFlagFaulty) != 0 {
		return nil, fmt.Errorf("corpus: unknown run flags %#x", flags)
	}
	run := &trace.Run{ID: int(id), Faulty: flags&runFlagFaulty != 0}
	if run.Faulty {
		if run.FaultKind, err = r.String(); err != nil {
			return nil, err
		}
		if run.FaultFunc, err = r.String(); err != nil {
			return nil, err
		}
	}
	nrec, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if nrec > uint64(r.Len()/2+1) {
		return nil, fmt.Errorf("corpus: record count %d exceeds remaining %d bytes", nrec, r.Len())
	}
	if nrec > 0 {
		run.Records = make([]trace.Record, 0, nrec)
	}
	for i := uint64(0); i < nrec; i++ {
		locID, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if locID >= uint64(len(locs)) {
			return nil, fmt.Errorf("corpus: location ID %d out of dictionary range %d", locID, len(locs))
		}
		rec := trace.Record{Loc: locs[locID]}
		nobs, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if nobs > uint64(r.Len()/2+1) {
			return nil, fmt.Errorf("corpus: observation count %d exceeds remaining %d bytes", nobs, r.Len())
		}
		if nobs > 0 {
			rec.Obs = make([]trace.Observation, 0, nobs)
		}
		for j := uint64(0); j < nobs; j++ {
			varID, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			if varID >= uint64(len(vars)) {
				return nil, fmt.Errorf("corpus: variable ID %d out of dictionary range %d", varID, len(vars))
			}
			meta, err := r.Byte()
			if err != nil {
				return nil, err
			}
			if meta&^byte(obsClassMask|obsMetaString) != 0 {
				return nil, fmt.Errorf("corpus: unknown observation meta %#x", meta)
			}
			class := trace.VarClass(meta & obsClassMask)
			if class < trace.ClassGlobal || class > trace.ClassReturn {
				return nil, fmt.Errorf("corpus: invalid variable class %d", class)
			}
			ob := trace.Observation{Var: vars[varID], Class: class}
			if meta&obsMetaString != 0 {
				ob.Kind = trace.ValueString
				if ob.Str, err = r.String(); err != nil {
					return nil, err
				}
			} else {
				ob.Kind = trace.ValueInt
				if ob.Int, err = r.Varint(); err != nil {
					return nil, err
				}
			}
			rec.Obs = append(rec.Obs, ob)
		}
		run.Records = append(run.Records, rec)
	}
	return run, nil
}

// segLoc is the footer serialization of an interned location (structured,
// not the "f():enter" rendering, so arbitrary function names round-trip).
type segLoc struct {
	F string `json:"f"`
	K int    `json:"k"`
}

// blockInfo is one compressed block's footer index entry.
type blockInfo struct {
	Offset   int64  `json:"off"`   // file offset of the block header
	CompLen  int    `json:"clen"`  // compressed payload bytes
	RawLen   int    `json:"rlen"`  // uncompressed payload bytes
	FirstRun int    `json:"first"` // segment-relative index of the first run
	Runs     int    `json:"runs"`  // runs encoded in the block
	CRC      uint32 `json:"crc"`   // CRC32 (IEEE) of the compressed payload
}

// frame projects the block's index entry onto the generic framed-block
// layer's view (dropping the run-count fields the trace format adds).
func (b blockInfo) frame() BlockFrame {
	return BlockFrame{Offset: b.Offset, CompLen: b.CompLen, RawLen: b.RawLen, CRC: b.CRC}
}

// segFooter is the per-segment index, serialized as JSON ahead of the
// fixed-size trailer.
type segFooter struct {
	Program string      `json:"program"`
	Runs    int         `json:"runs"`
	Records int         `json:"records"`
	Locs    []segLoc    `json:"locs"`
	Vars    []string    `json:"vars"`
	Blocks  []blockInfo `json:"blocks"`
}

func (f *segFooter) locations() ([]trace.Location, error) {
	locs := make([]trace.Location, len(f.Locs))
	for i, l := range f.Locs {
		kind := trace.EventKind(l.K)
		if kind != trace.EventEnter && kind != trace.EventLeave {
			return nil, fmt.Errorf("corpus: footer location %d has invalid kind %d", i, l.K)
		}
		locs[i] = trace.Location{Func: l.F, Kind: kind}
	}
	return locs, nil
}

// SegmentInfo is one sealed segment's manifest entry.
type SegmentInfo struct {
	Name    string `json:"name"`
	Runs    int    `json:"runs"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
}

// manifest is the corpus-level index: the program the store belongs to and
// the sealed segments in seal order (the store's canonical run order).
type manifest struct {
	Version  int           `json:"version"`
	Program  string        `json:"program"`
	Segments []SegmentInfo `json:"segments"`
}
