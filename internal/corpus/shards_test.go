package corpus

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/trace"
)

func shardRun(id int) *trace.Run {
	return &trace.Run{
		ID:     id,
		Faulty: id%2 == 1,
		Records: []trace.Record{
			{Loc: trace.Location{Func: fmt.Sprintf("f%d", id%7), Kind: trace.EventEnter}},
		},
	}
}

func TestShardedCreateOpenRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateSharded(dir, "polymorph", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 || s.Program() != "polymorph" {
		t.Fatalf("sharded = %d shards for %q, want 3 for polymorph", s.Shards(), s.Program())
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(shardRun(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalRuns(); got != 10 {
		t.Fatalf("TotalRuns = %d, want 10", got)
	}

	// Reopen: fan-out and program survive; a mismatched program errors.
	s2, err := CreateSharded(dir, "polymorph", 7) // requested fan-out ignored on reopen
	if err != nil {
		t.Fatal(err)
	}
	if s2.Shards() != 3 {
		t.Fatalf("reopen changed fan-out to %d", s2.Shards())
	}
	if _, err := CreateSharded(dir, "grep", 0); err == nil {
		t.Fatal("reopen with wrong program succeeded")
	}
	if !IsShardedDir(dir) {
		t.Fatal("IsShardedDir = false for a sharded corpus")
	}
	if IsShardedDir(t.TempDir()) {
		t.Fatal("IsShardedDir = true for an empty dir")
	}
}

func TestShardedConcurrentAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateSharded(dir, "polymorph", 4)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append(shardRun(w*perWriter + i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := s.TotalRuns(); got != writers*perWriter {
		t.Fatalf("TotalRuns = %d, want %d", got, writers*perWriter)
	}
	if got := s.Appended(); got != writers*perWriter {
		t.Fatalf("Appended = %d, want %d", got, writers*perWriter)
	}

	// Every appended run is present exactly once after the shard merge.
	c, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, run := range c.Runs {
		seen[run.ID]++
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("materialized %d unique runs, want %d", len(seen), writers*perWriter)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("run %d appears %d times", id, n)
		}
	}

	problems, summary, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("verify problems: %v\n(%s)", problems, summary)
	}
}

func TestShardedMaterializeDeterministic(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateSharded(dir, "polymorph", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Append(shardRun(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	c1, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh handle over the same directory sees the same sequence.
	s2, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Runs) != len(c2.Runs) {
		t.Fatalf("materialize lengths differ: %d vs %d", len(c1.Runs), len(c2.Runs))
	}
	for i := range c1.Runs {
		if c1.Runs[i].ID != c2.Runs[i].ID {
			t.Fatalf("run order diverged at %d: %d vs %d", i, c1.Runs[i].ID, c2.Runs[i].ID)
		}
	}
}

func TestShardedSealThenAppendMore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded")
	s, err := CreateSharded(dir, "polymorph", 2)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 5; i++ {
			if err := s.Append(shardRun(round*5 + i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Seal(); err != nil {
			t.Fatalf("seal round %d: %v", round, err)
		}
		if got, want := s.TotalRuns(), (round+1)*5; got != want {
			t.Fatalf("round %d: TotalRuns = %d, want %d", round, got, want)
		}
	}
}

func TestShardedFanoutBounds(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultShards},
		{-3, DefaultShards},
		{MaxShards + 50, MaxShards},
		{5, 5},
	} {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%d", tc.ask))
		s, err := CreateSharded(dir, "polymorph", tc.ask)
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards() != tc.want {
			t.Errorf("fan-out %d created %d shards, want %d", tc.ask, s.Shards(), tc.want)
		}
	}
}
