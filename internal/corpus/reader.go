package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/trace"
)

// segment is an opened, footer-validated segment: the index is in memory,
// the blocks stay on disk until asked for.
type segment struct {
	info   SegmentInfo
	path   string
	footer segFooter
	locs   []trace.Location
}

// openSegment reads and validates a segment's trailer and footer. Block
// payloads are not touched; a torn (truncated or corrupted-at-the-end)
// segment fails here with a descriptive error.
func openSegment(path string) (*segment, error) {
	blob, size, err := ReadFooterBlob(path, segMagic, trailerMagic)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	seg := &segment{path: path}
	if err := json.Unmarshal(blob, &seg.footer); err != nil {
		return nil, fmt.Errorf("corpus: %s: bad footer: %w", path, err)
	}
	if seg.locs, err = seg.footer.locations(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	seg.info = SegmentInfo{Name: filepath.Base(path), Runs: seg.footer.Runs, Records: seg.footer.Records, Bytes: size}
	return seg, nil
}

// segment returns the named segment, opening and caching it on first use.
func (s *Store) segment(name string) (*segment, error) {
	s.mu.Lock()
	if seg, ok := s.segs[name]; ok {
		s.mu.Unlock()
		return seg, nil
	}
	s.mu.Unlock()
	seg, err := openSegment(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.segs[name] = seg
	s.mu.Unlock()
	return seg, nil
}

// readBlock reads, checksums, and decompresses one block into a raw
// payload buffer (reused across calls when cap allows).
func readBlock(f *os.File, b blockInfo, raw []byte) ([]byte, error) {
	out, err := ReadFramedBlock(f, b.frame(), raw)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	return out, nil
}

// decodeBlock decodes all runs of one raw block payload.
func decodeBlock(raw []byte, seg *segment, want int, dst []*trace.Run) ([]*trace.Run, error) {
	r := NewByteReader(raw)
	dst = dst[:0]
	for i := 0; i < want; i++ {
		run, err := decodeRun(r, seg.locs, seg.footer.Vars)
		if err != nil {
			return dst, fmt.Errorf("%s: run %d in block: %w", seg.path, i, err)
		}
		dst = append(dst, run)
	}
	if r.Len() != 0 {
		return dst, fmt.Errorf("%s: %d trailing bytes after %d runs in block", seg.path, r.Len(), want)
	}
	return dst, nil
}

// Iterator streams a store's runs in manifest order, decoding one block at
// a time — peak memory is one raw block (plus its decoded runs), never the
// corpus. It implements trace.RunIterator.
type Iterator struct {
	s     *Store
	infos []SegmentInfo

	segIdx   int
	seg      *segment
	f        *os.File
	blockIdx int

	raw    []byte
	runs   []*trace.Run
	runIdx int

	scannedBytes int64 // compressed bytes read
	scannedRuns  int
	maxBlockRaw  int
	err          error
}

// Iter returns an iterator over every run in the store, in segment seal
// order and within a segment in append order.
func (s *Store) Iter() *Iterator {
	return &Iterator{s: s, infos: s.Segments()}
}

// Next returns the next run, or io.EOF after the last one. Any other error
// is sticky.
func (it *Iterator) Next() (*trace.Run, error) {
	if it.err != nil {
		return nil, it.err
	}
	for it.runIdx >= len(it.runs) {
		if err := it.advance(); err != nil {
			it.err = err
			it.closeFile()
			if err == io.EOF && it.s.Obs != nil {
				m := it.s.Obs.Metrics
				m.Counter(obs.MetricCorpusScanRuns).Add(int64(it.scannedRuns))
				m.Counter(obs.MetricCorpusScanBytes).Add(it.scannedBytes)
			}
			return nil, err
		}
	}
	run := it.runs[it.runIdx]
	it.runIdx++
	it.scannedRuns++
	return run, nil
}

// advance loads the next non-empty block, crossing segment boundaries.
func (it *Iterator) advance() error {
	for {
		if it.seg == nil {
			if it.segIdx >= len(it.infos) {
				return io.EOF
			}
			seg, err := it.s.segment(it.infos[it.segIdx].Name)
			if err != nil {
				return err
			}
			f, err := os.Open(seg.path)
			if err != nil {
				return err
			}
			it.seg, it.f, it.blockIdx = seg, f, 0
		}
		if it.blockIdx >= len(it.seg.footer.Blocks) {
			it.closeFile()
			it.seg = nil
			it.segIdx++
			continue
		}
		b := it.seg.footer.Blocks[it.blockIdx]
		it.blockIdx++
		raw, err := readBlock(it.f, b, it.raw)
		if err != nil {
			return err
		}
		it.raw = raw
		if len(raw) > it.maxBlockRaw {
			it.maxBlockRaw = len(raw)
		}
		it.scannedBytes += int64(b.CompLen)
		runs, err := decodeBlock(raw, it.seg, b.Runs, it.runs)
		if err != nil {
			return err
		}
		it.runs, it.runIdx = runs, 0
		if len(runs) > 0 {
			return nil
		}
	}
}

func (it *Iterator) closeFile() {
	if it.f != nil {
		it.f.Close()
		it.f = nil
	}
}

// Close releases the iterator's open segment file. Next after Close
// returns io.EOF.
func (it *Iterator) Close() error {
	it.closeFile()
	if it.err == nil {
		it.err = io.EOF
	}
	return nil
}

// ScannedBytes returns the compressed bytes read so far (scan throughput).
func (it *Iterator) ScannedBytes() int64 { return it.scannedBytes }

// MaxBlockBytes returns the largest raw block decoded so far — the
// iterator's peak buffer, the witness for the bounded-memory guarantee.
func (it *Iterator) MaxBlockBytes() int { return it.maxBlockRaw }

// RunAt fetches the store-global i-th run (manifest order) by reading only
// that run's block: footer indices narrow the segment and block, then the
// block is decoded and scanned.
func (s *Store) RunAt(i int) (*trace.Run, error) {
	if i < 0 {
		return nil, fmt.Errorf("corpus: run index %d out of range", i)
	}
	rel := i
	for _, info := range s.Segments() {
		if rel >= info.Runs {
			rel -= info.Runs
			continue
		}
		seg, err := s.segment(info.Name)
		if err != nil {
			return nil, err
		}
		return seg.runAt(rel)
	}
	return nil, fmt.Errorf("corpus: run index %d out of range (%d runs)", i, s.TotalRuns())
}

func (seg *segment) runAt(rel int) (*trace.Run, error) {
	var blk *blockInfo
	for bi := range seg.footer.Blocks {
		b := &seg.footer.Blocks[bi]
		if rel >= b.FirstRun && rel < b.FirstRun+b.Runs {
			blk = b
			break
		}
	}
	if blk == nil {
		return nil, fmt.Errorf("corpus: %s: run %d not covered by block index", seg.path, rel)
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := readBlock(f, *blk, nil)
	if err != nil {
		return nil, err
	}
	r := NewByteReader(raw)
	for i := 0; i < blk.Runs; i++ {
		run, err := decodeRun(r, seg.locs, seg.footer.Vars)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", seg.path, err)
		}
		if blk.FirstRun+i == rel {
			return run, nil
		}
	}
	return nil, fmt.Errorf("corpus: %s: run %d missing from its block", seg.path, rel)
}

// Materialize loads the whole store into an in-memory trace.Corpus (the
// legacy representation; differential tests and small-corpus callers).
func (s *Store) Materialize() (*trace.Corpus, error) {
	c := &trace.Corpus{Program: s.Program(), Runs: make([]trace.Run, 0, s.TotalRuns())}
	it := s.Iter()
	defer it.Close()
	for {
		run, err := it.Next()
		if err == io.EOF {
			return c, nil
		}
		if err != nil {
			return nil, err
		}
		c.Runs = append(c.Runs, *run)
	}
}
