package corpus

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// fuzzDict is a fixed decode dictionary: fuzzed records reference IDs into
// these tables, so valid inputs exist and invalid IDs are reachable.
var (
	fuzzLocs = []trace.Location{
		{Func: "alpha", Kind: trace.EventEnter},
		{Func: "alpha", Kind: trace.EventLeave},
		{Func: "beta", Kind: trace.EventEnter},
	}
	fuzzVars = []string{"x", "y", "buf"}
)

// FuzzRunRecordRoundTrip throws arbitrary bytes at the record decoder.
// Invariants: decode never panics; and when decode succeeds, re-encoding
// the run and decoding it again must reproduce the same run exactly
// (encode ∘ decode is the identity on the decoder's image).
func FuzzRunRecordRoundTrip(f *testing.F) {
	// Seed the corpus with well-formed encodings of representative runs.
	seeds := []trace.Run{
		{ID: 0},
		{ID: 1, Faulty: true, FaultKind: "overflow", FaultFunc: "alpha"},
		{ID: 7, Faulty: true, FaultKind: "", FaultFunc: "beta", Records: []trace.Record{
			{Loc: fuzzLocs[0], Obs: []trace.Observation{
				{Var: "x", Class: trace.ClassParam, Kind: trace.ValueInt, Int: -42},
				{Var: "buf", Class: trace.ClassGlobal, Kind: trace.ValueString, Str: "abc\x00def"},
			}},
			{Loc: fuzzLocs[2], Obs: []trace.Observation{
				{Var: "y", Class: trace.ClassReturn, Kind: trace.ValueInt, Int: 1 << 40},
			}},
		}},
	}
	for i := range seeds {
		d := newDict()
		for _, l := range fuzzLocs {
			d.locID(l)
		}
		for _, v := range fuzzVars {
			d.varID(v)
		}
		f.Add(appendRun(nil, &seeds[i], d))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewByteReader(data)
		run, err := decodeRun(r, fuzzLocs, fuzzVars)
		if err != nil {
			return // malformed input rejected cleanly — that's the contract
		}
		// Re-encode with a fresh dictionary and decode again.
		d := newDict()
		enc := appendRun(nil, run, d)
		r2 := NewByteReader(enc)
		run2, err := decodeRun(r2, d.locs, d.vars)
		if err != nil {
			t.Fatalf("re-decode of re-encoded run failed: %v\nrun: %+v", err, run)
		}
		if r2.Len() != 0 {
			t.Fatalf("re-decode left %d trailing bytes", r2.Len())
		}
		if !reflect.DeepEqual(run, run2) {
			t.Fatalf("round trip changed run:\n first: %+v\nsecond: %+v", run, run2)
		}
	})
}
