package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/trace"
)

const (
	shardsManifestName    = "shards.json"
	shardsManifestVersion = 1
	// DefaultShards is the shard count for a sharded corpus created
	// without an explicit fan-out.
	DefaultShards = 4
	// MaxShards bounds the fan-out a creator may request (a shard costs a
	// directory, a writer, and an open segment; hundreds buy nothing).
	MaxShards = 64
)

// shardsManifest is the on-disk root of a sharded corpus: the program and
// the fixed shard fan-out. Written once at create time via temp+fsync+
// rename; the per-shard stores carry their own crash-safe manifests.
type shardsManifest struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	Shards  int    `json:"shards"`
}

// Sharded routes concurrent run appends across a fixed set of shard
// stores, one Writer per shard, so a fleet of monitor agents streaming
// into one corpus contend only on their own shard's writer. Appends
// round-robin over the shards (an atomic counter, no coordination);
// each shard is an ordinary crash-safe segment Store, so a crash mid
// -stream loses at worst the unsealed tail of each shard's open segment.
type Sharded struct {
	dir     string
	program string
	stores  []*Store

	next atomic.Uint64 // round-robin append cursor

	// One writer per shard, each guarded by its own mutex: concurrent
	// Append calls landing on different shards proceed in parallel.
	writers []*Writer
	wmu     []sync.Mutex

	appended atomic.Int64 // runs appended through this handle
}

// CreateSharded initializes (or reopens) a sharded corpus at dir for the
// named program with the given fan-out (0: DefaultShards). Reopening
// keeps the original fan-out and requires a matching program.
func CreateSharded(dir, program string, shards int) (*Sharded, error) {
	if _, err := os.Stat(filepath.Join(dir, shardsManifestName)); err == nil {
		s, err := OpenSharded(dir)
		if err != nil {
			return nil, err
		}
		if s.program != program {
			return nil, fmt.Errorf("corpus: sharded store %s belongs to %q, not %q", dir, s.program, program)
		}
		return s, nil
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	if shards > MaxShards {
		shards = MaxShards
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := shardsManifest{Version: shardsManifestVersion, Program: program, Shards: shards}
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, shardsManifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(append(blob, '\n')); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(dir, shardsManifestName))
	}
	if err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		os.Remove(tmp)
		return nil, err
	}
	return OpenSharded(dir)
}

// OpenSharded opens an existing sharded corpus.
func OpenSharded(dir string) (*Sharded, error) {
	blob, err := os.ReadFile(filepath.Join(dir, shardsManifestName))
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", dir, err)
	}
	var man shardsManifest
	if err := json.Unmarshal(blob, &man); err != nil {
		return nil, fmt.Errorf("corpus: %s: bad shards manifest: %w", dir, err)
	}
	if man.Version != shardsManifestVersion {
		return nil, fmt.Errorf("corpus: %s: shards manifest version %d, want %d", dir, man.Version, shardsManifestVersion)
	}
	if man.Shards <= 0 || man.Shards > MaxShards {
		return nil, fmt.Errorf("corpus: %s: shards manifest fan-out %d out of range", dir, man.Shards)
	}
	s := &Sharded{
		dir:     dir,
		program: man.Program,
		stores:  make([]*Store, man.Shards),
		writers: make([]*Writer, man.Shards),
		wmu:     make([]sync.Mutex, man.Shards),
	}
	for i := range s.stores {
		st, err := Create(filepath.Join(dir, fmt.Sprintf("shard-%02d", i)), man.Program)
		if err != nil {
			return nil, err
		}
		s.stores[i] = st
	}
	return s, nil
}

// Dir returns the sharded corpus root directory.
func (s *Sharded) Dir() string { return s.dir }

// Program returns the program the corpus was collected from.
func (s *Sharded) Program() string { return s.program }

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.stores) }

// Stores returns the underlying shard stores in shard order (validation
// and iteration; callers must not write through them directly).
func (s *Sharded) Stores() []*Store { return append([]*Store(nil), s.stores...) }

// SetObs attaches a metrics handle to every shard store.
func (s *Sharded) SetObs(o *obs.Obs) {
	for _, st := range s.stores {
		st.Obs = o
	}
}

// Append routes one run to the next shard in round-robin order. Safe for
// any number of concurrent callers; two appends racing to the same shard
// serialize on that shard's writer mutex only.
func (s *Sharded) Append(run *trace.Run) error {
	i := int(s.next.Add(1)-1) % len(s.stores)
	s.wmu[i].Lock()
	defer s.wmu[i].Unlock()
	if s.writers[i] == nil {
		s.writers[i] = s.stores[i].NewWriter(Options{})
	}
	if err := s.writers[i].Append(run); err != nil {
		return err
	}
	s.appended.Add(1)
	return nil
}

// Appended returns the number of runs appended through this handle (not
// counting runs already on disk when it was opened).
func (s *Sharded) Appended() int64 { return s.appended.Load() }

// Seal flushes and seals every shard's open writer (temp+fsync+rename per
// segment, as for any Store writer). Safe to call repeatedly; appends may
// continue afterwards (a fresh writer starts a fresh segment).
func (s *Sharded) Seal() error {
	var first error
	for i := range s.writers {
		s.wmu[i].Lock()
		w := s.writers[i]
		s.writers[i] = nil
		s.wmu[i].Unlock()
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TotalRuns sums the sealed run counts across shards (unsealed appends
// are not yet visible, exactly like a single Store).
func (s *Sharded) TotalRuns() int {
	n := 0
	for _, st := range s.stores {
		n += st.TotalRuns()
	}
	return n
}

// TotalBytes sums the sealed on-disk bytes across shards.
func (s *Sharded) TotalBytes() int64 {
	var n int64
	for _, st := range s.stores {
		n += st.TotalBytes()
	}
	return n
}

// Materialize merges every shard into one in-memory corpus, shard by
// shard in shard order — deterministic for a given sealed corpus, so two
// analyses of the same directory see the same run sequence.
func (s *Sharded) Materialize() (*trace.Corpus, error) {
	c := &trace.Corpus{Program: s.program}
	for _, st := range s.stores {
		part, err := st.Materialize()
		if err != nil {
			return nil, err
		}
		c.Runs = append(c.Runs, part.Runs...)
	}
	return c, nil
}

// Verify deep-checks every shard store and flattens the findings.
func (s *Sharded) Verify() (problems []string, summary string, err error) {
	blocks, runs, bytes := 0, 0, int64(0)
	for i, st := range s.stores {
		rep, err := st.Verify()
		if err != nil {
			return nil, "", fmt.Errorf("shard %d: %w", i, err)
		}
		for _, p := range rep.AllProblems() {
			problems = append(problems, fmt.Sprintf("shard %d: %s", i, p))
		}
		for _, seg := range rep.Segments {
			blocks += seg.Blocks
			runs += seg.Runs
			bytes += seg.Bytes
		}
	}
	summary = fmt.Sprintf("sharded corpus — %d shards, %d blocks, %d runs, %d bytes, %d problems",
		len(s.stores), blocks, runs, bytes, len(problems))
	return problems, summary, nil
}

// IsShardedDir reports whether dir holds a sharded corpus (recognized by
// its shards.json manifest) — how tracecheck routes directories.
func IsShardedDir(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, shardsManifestName))
	return err == nil
}
