package corpus

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Store is an on-disk trace corpus: a directory with a manifest and sealed
// segment files. One Store handle may serve several concurrent Writers
// (each owns its own segment) and any number of readers; the mutex guards
// only the manifest and the segment-name sequence.
type Store struct {
	dir string

	// Obs, when set, receives corpus metrics (runs appended, blocks and
	// bytes written, segments sealed, scan throughput). Nil disables the
	// instrumentation; all updates are nil-safe.
	Obs *obs.Obs

	mu      sync.Mutex
	man     manifest
	nextSeq int
	segs    map[string]*segment // lazily opened, footer-validated segments
}

// Create initializes (or reopens) a store directory for the named program.
// An existing store is reopened and must belong to the same program.
func Create(dir, program string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		s, err := Open(dir)
		if err != nil {
			return nil, err
		}
		if s.Program() != program {
			return nil, fmt.Errorf("corpus: store %s belongs to %q, not %q", dir, s.Program(), program)
		}
		return s, nil
	}
	s := &Store{
		dir:  dir,
		man:  manifest{Version: manifestVersion, Program: program},
		segs: make(map[string]*segment),
	}
	if err := s.writeManifestLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// Open loads an existing store's manifest.
func Open(dir string) (*Store, error) {
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("corpus: %s: %w", dir, err)
	}
	s := &Store{dir: dir, segs: make(map[string]*segment)}
	if err := json.Unmarshal(blob, &s.man); err != nil {
		return nil, fmt.Errorf("corpus: %s: bad manifest: %w", dir, err)
	}
	if s.man.Version != manifestVersion {
		return nil, fmt.Errorf("corpus: %s: manifest version %d, want %d", dir, s.man.Version, manifestVersion)
	}
	for _, seg := range s.man.Segments {
		if seq := segmentSeq(seg.Name); seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Program returns the program the store's runs were collected from.
func (s *Store) Program() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.man.Program
}

// Segments returns a snapshot of the sealed segments in seal order.
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SegmentInfo(nil), s.man.Segments...)
}

// TotalRuns returns the manifest's run count across all sealed segments.
func (s *Store) TotalRuns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, seg := range s.man.Segments {
		n += seg.Runs
	}
	return n
}

// TotalBytes returns the on-disk size of all sealed segments.
func (s *Store) TotalBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, seg := range s.man.Segments {
		n += seg.Bytes
	}
	return n
}

// Counts reports (#runs, #distinct locations, #distinct variables) — the
// n(R), n(L), n(V) preprocessing counts — from the manifest and segment
// footers alone, without decompressing a single block.
func (s *Store) Counts() (runs, locs, vars int, err error) {
	locSet := make(map[trace.Location]struct{})
	varSet := make(map[string]struct{})
	for _, info := range s.Segments() {
		seg, err := s.segment(info.Name)
		if err != nil {
			return 0, 0, 0, err
		}
		runs += seg.footer.Runs
		for _, l := range seg.locs {
			locSet[l] = struct{}{}
		}
		for _, v := range seg.footer.Vars {
			varSet[v] = struct{}{}
		}
	}
	return runs, len(locSet), len(varSet), nil
}

// segmentSeq parses the numeric sequence out of "seg-000042.seg" (-1 when
// the name is foreign).
func segmentSeq(name string) int {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
		return -1
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"))
	if err != nil {
		return -1
	}
	return n
}

func (s *Store) allocSegmentName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := fmt.Sprintf("seg-%06d.seg", s.nextSeq)
	s.nextSeq++
	return name
}

// registerSegment appends a sealed segment to the manifest and persists it
// (temp file + rename, fsynced), making the segment visible to readers.
func (s *Store) registerSegment(info SegmentInfo) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.man.Segments = append(s.man.Segments, info)
	return s.writeManifestLocked()
}

// dropSegments removes the named segments from the manifest (compaction).
func (s *Store) dropSegments(names map[string]bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.man.Segments[:0]
	for _, seg := range s.man.Segments {
		if !names[seg.Name] {
			kept = append(kept, seg)
		}
	}
	s.man.Segments = kept
	for name := range names {
		delete(s.segs, name)
	}
	return s.writeManifestLocked()
}

func (s *Store) writeManifestLocked() error {
	// Keep manifest order stable but also deterministic after concurrent
	// seals started from the same store state: primary key is the segment
	// sequence number (foreign names sort after, by name).
	sort.SliceStable(s.man.Segments, func(i, j int) bool {
		si, sj := segmentSeq(s.man.Segments[i].Name), segmentSeq(s.man.Segments[j].Name)
		if si != sj {
			if si < 0 || sj < 0 {
				return sj < 0 && si >= 0
			}
			return si < sj
		}
		return s.man.Segments[i].Name < s.man.Segments[j].Name
	})
	blob, err := json.MarshalIndent(&s.man, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(s.dir, manifestName, append(blob, '\n'))
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Options tunes a Writer's block and segment geometry. The zero value uses
// the package defaults.
type Options struct {
	// BlockBytes is the raw payload accumulated before a block is
	// compressed and flushed — the reader's peak per-block decode buffer.
	BlockBytes int
	// SegmentBytes is the compressed size at which the writer seals the
	// current segment and rolls to a new one.
	SegmentBytes int64
}

func (o Options) blockBytes() int {
	if o.BlockBytes <= 0 {
		return DefaultBlockBytes
	}
	return o.BlockBytes
}

func (o Options) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

// Writer appends runs to a store. Each Writer owns the segment it is
// filling, so concurrent Writers on one Store never contend except at the
// manifest; a segment becomes visible only at seal time (footer written,
// file fsynced, temp name renamed into place), so a crash mid-append
// leaves at worst an invisible *.tmp file.
type Writer struct {
	s    *Store
	opts Options

	seg       *SegmentFile // nil between segments
	finalName string

	buf     []byte // raw payload pending in the current block
	dict    *dict
	blocks  []blockInfo
	runs    int // runs in the current segment
	records int // records in the current segment

	sealedRuns  int // runs across segments sealed by this writer
	sealedBytes int64
}

// NewWriter returns a Writer appending to the store.
func (s *Store) NewWriter(opts Options) *Writer {
	return &Writer{s: s, opts: opts}
}

// Append encodes one run into the writer's current segment, flushing a
// compressed block when the raw buffer reaches BlockBytes and sealing +
// rolling the segment when it reaches SegmentBytes.
func (w *Writer) Append(run *trace.Run) error {
	if w.seg == nil {
		if err := w.startSegment(); err != nil {
			return err
		}
	}
	w.buf = appendRun(w.buf, run, w.dict)
	w.runs++
	w.records += len(run.Records)
	if w.s.Obs != nil {
		w.s.Obs.Metrics.Counter(obs.MetricCorpusRunsAppended).Inc()
	}
	if len(w.buf) >= w.opts.blockBytes() {
		if err := w.flushBlock(); err != nil {
			return err
		}
		if w.seg.Written() >= w.opts.segmentBytes() {
			return w.seal()
		}
	}
	return nil
}

func (w *Writer) startSegment() error {
	w.finalName = w.s.allocSegmentName()
	seg, err := CreateSegmentFile(w.s.dir, w.finalName, segMagic)
	if err != nil {
		return err
	}
	w.seg = seg
	w.dict = newDict()
	w.blocks = nil
	w.runs, w.records = 0, 0
	w.buf = w.buf[:0]
	return nil
}

// flushBlock compresses the pending payload and writes one framed block
// through the shared segment layer.
func (w *Writer) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	frame, err := w.seg.AppendBlock(w.buf)
	if err != nil {
		return err
	}
	w.blocks = append(w.blocks, blockInfo{
		Offset:   frame.Offset,
		CompLen:  frame.CompLen,
		RawLen:   frame.RawLen,
		FirstRun: w.blockFirstRun(),
		Runs:     w.runs - w.blockFirstRun(),
		CRC:      frame.CRC,
	})
	w.buf = w.buf[:0]
	if w.s.Obs != nil {
		w.s.Obs.Metrics.Counter(obs.MetricCorpusBlocksWritten).Inc()
	}
	return nil
}

// blockFirstRun returns the segment-relative index of the first run in the
// pending (unflushed) block.
func (w *Writer) blockFirstRun() int {
	if len(w.blocks) == 0 {
		return 0
	}
	last := w.blocks[len(w.blocks)-1]
	return last.FirstRun + last.Runs
}

// seal flushes the pending block, writes the footer and trailer, fsyncs,
// renames the temp file to its final segment name, and registers the
// segment in the manifest. After seal the writer is ready to start a new
// segment on the next Append.
func (w *Writer) seal() error {
	if w.seg == nil {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return w.abort(err)
	}
	if w.runs == 0 {
		// Nothing was appended: discard the empty segment silently.
		w.seg.Abort()
		w.seg = nil
		return nil
	}
	footer := segFooter{
		Program: w.s.Program(),
		Runs:    w.runs,
		Records: w.records,
		Vars:    w.dict.vars,
		Blocks:  w.blocks,
	}
	footer.Locs = make([]segLoc, len(w.dict.locs))
	for i, l := range w.dict.locs {
		footer.Locs[i] = segLoc{F: l.Func, K: int(l.Kind)}
	}
	blob, err := json.Marshal(&footer)
	if err != nil {
		return w.abort(err)
	}
	size, err := w.seg.Seal(blob, trailerMagic)
	if err != nil {
		w.seg = nil
		return err
	}
	info := SegmentInfo{Name: w.finalName, Runs: w.runs, Records: w.records, Bytes: size}
	w.sealedRuns += w.runs
	w.sealedBytes += size
	if w.s.Obs != nil {
		w.s.Obs.Metrics.Counter(obs.MetricCorpusSegmentsSealed).Inc()
		w.s.Obs.Metrics.Counter(obs.MetricCorpusBytesWritten).Add(size)
	}
	w.seg = nil
	return w.s.registerSegment(info)
}

func (w *Writer) abort(err error) error {
	if w.seg != nil {
		w.seg.Abort()
		w.seg = nil
	}
	return err
}

// Close seals the in-progress segment, if any. The writer may be reused
// afterwards (the next Append starts a fresh segment).
func (w *Writer) Close() error { return w.seal() }

// SealedRuns returns the number of runs this writer has made durable.
func (w *Writer) SealedRuns() int { return w.sealedRuns }

// SealedBytes returns the on-disk bytes of the segments this writer sealed.
func (w *Writer) SealedBytes() int64 { return w.sealedBytes }
