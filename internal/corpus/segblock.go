package corpus

// The generic framed-block segment layer. The trace corpus above and the
// persistent solver-cache store (internal/solver/persist) share the same
// durability machinery: a magic-tagged segment file accumulates CRC'd gzip
// blocks, ends with a JSON footer blob plus a fixed-size trailer (footer
// CRC32, footer length, trailer magic), and becomes visible only when the
// finished temp file is fsynced and renamed into place. Everything in this
// file is format-agnostic — record encoding, dictionaries, and footer
// schemas stay with each store.

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// TrailerSize is the fixed byte length of a segment trailer: CRC32 of the
// footer blob, footer length, and an 8-byte trailer magic.
const TrailerSize = 4 + 8 + 8

// BlockFrame is one compressed block's index entry: where it sits in the
// file and how to check and decode it. Footer schemas embed or copy it.
type BlockFrame struct {
	Offset  int64  `json:"off"`  // file offset of the block's frame header
	CompLen int    `json:"clen"` // compressed payload bytes
	RawLen  int    `json:"rlen"` // uncompressed payload bytes
	CRC     uint32 `json:"crc"`  // CRC32 (IEEE) of the compressed payload
}

// SegmentFile is an in-progress segment: a temp file that accumulates
// framed blocks and becomes durable (and visible under its final name)
// only at Seal. A crash at any earlier point leaves an invisible *.tmp-
// file and nothing else.
type SegmentFile struct {
	f         *os.File
	dir       string
	finalName string
	written   int64

	zbuf bytes.Buffer
	gz   *gzip.Writer
}

// CreateSegmentFile opens a new temp-backed segment in dir and writes the
// magic. finalName is the name the file takes at Seal.
func CreateSegmentFile(dir, finalName, magic string) (*SegmentFile, error) {
	f, err := os.CreateTemp(dir, finalName+".tmp-*")
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, err
	}
	return &SegmentFile{f: f, dir: dir, finalName: finalName, written: int64(len(magic))}, nil
}

// Written returns the bytes written so far (magic + frames).
func (s *SegmentFile) Written() int64 { return s.written }

// AppendBlock compresses raw and writes one framed block: uvarint rawLen,
// uvarint compLen, uvarint CRC32(compressed), then the gzip payload.
func (s *SegmentFile) AppendBlock(raw []byte) (BlockFrame, error) {
	s.zbuf.Reset()
	if s.gz == nil {
		s.gz = gzip.NewWriter(&s.zbuf)
	} else {
		s.gz.Reset(&s.zbuf)
	}
	if _, err := s.gz.Write(raw); err != nil {
		return BlockFrame{}, err
	}
	if err := s.gz.Close(); err != nil {
		return BlockFrame{}, err
	}
	comp := s.zbuf.Bytes()
	crc := crc32.ChecksumIEEE(comp)

	hdr := binary.AppendUvarint(nil, uint64(len(raw)))
	hdr = binary.AppendUvarint(hdr, uint64(len(comp)))
	hdr = binary.AppendUvarint(hdr, uint64(crc))

	frame := BlockFrame{Offset: s.written, CompLen: len(comp), RawLen: len(raw), CRC: crc}
	if _, err := s.f.Write(hdr); err != nil {
		return BlockFrame{}, err
	}
	if _, err := s.f.Write(comp); err != nil {
		return BlockFrame{}, err
	}
	s.written += int64(len(hdr) + len(comp))
	return frame, nil
}

// Seal writes the footer blob and trailer, fsyncs, and renames the temp
// file to its final name (then fsyncs the directory so the rename is
// durable). It returns the sealed file's total size. The SegmentFile is
// spent afterwards.
func (s *SegmentFile) Seal(footer []byte, trailerMagic string) (int64, error) {
	trailer := make([]byte, 0, TrailerSize)
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(footer))
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(len(footer)))
	trailer = append(trailer, trailerMagic...)
	if _, err := s.f.Write(footer); err != nil {
		s.Abort()
		return 0, err
	}
	if _, err := s.f.Write(trailer); err != nil {
		s.Abort()
		return 0, err
	}
	s.written += int64(len(footer) + len(trailer))
	if err := s.f.Sync(); err != nil {
		s.Abort()
		return 0, err
	}
	tmpPath := s.f.Name()
	if err := s.f.Close(); err != nil {
		os.Remove(tmpPath)
		s.f = nil
		return 0, err
	}
	s.f = nil
	if err := os.Rename(tmpPath, filepath.Join(s.dir, s.finalName)); err != nil {
		os.Remove(tmpPath)
		return 0, err
	}
	if err := syncDir(s.dir); err != nil {
		return 0, err
	}
	return s.written, nil
}

// Abort discards the temp file. Safe to call after Seal (no-op).
func (s *SegmentFile) Abort() {
	if s.f != nil {
		tmpPath := s.f.Name()
		s.f.Close()
		os.Remove(tmpPath)
		s.f = nil
	}
}

// ReadFooterBlob validates a sealed segment's magic and trailer and returns
// the CRC-checked footer blob plus the file size. A torn (truncated or
// unsealed) segment fails here with a descriptive error; block payloads are
// not touched.
func ReadFooterBlob(path, magic, trailerMagic string) ([]byte, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := st.Size()
	if size < int64(len(magic))+TrailerSize {
		return nil, size, fmt.Errorf("%s: truncated segment (%d bytes)", path, size)
	}
	got := make([]byte, len(magic))
	if _, err := f.ReadAt(got, 0); err != nil {
		return nil, size, err
	}
	if string(got) != magic {
		return nil, size, fmt.Errorf("%s: bad segment magic", path)
	}
	trailer := make([]byte, TrailerSize)
	if _, err := f.ReadAt(trailer, size-TrailerSize); err != nil {
		return nil, size, err
	}
	if string(trailer[12:]) != trailerMagic {
		return nil, size, fmt.Errorf("%s: missing trailer magic (torn or unsealed segment)", path)
	}
	footerCRC := binary.LittleEndian.Uint32(trailer[0:4])
	footerLen := binary.LittleEndian.Uint64(trailer[4:12])
	if footerLen > uint64(size)-uint64(len(magic))-TrailerSize {
		return nil, size, fmt.Errorf("%s: footer length %d exceeds file size %d", path, footerLen, size)
	}
	blob := make([]byte, footerLen)
	if _, err := f.ReadAt(blob, size-TrailerSize-int64(footerLen)); err != nil {
		return nil, size, err
	}
	if crc := crc32.ChecksumIEEE(blob); crc != footerCRC {
		return nil, size, fmt.Errorf("%s: footer checksum mismatch (%#x != %#x)", path, crc, footerCRC)
	}
	return blob, size, nil
}

// ReadFramedBlock reads, checksums, and decompresses one block into raw
// (reused when its capacity allows). The frame header on disk is
// cross-checked against the footer's index entry — a mismatch means either
// side is corrupt.
func ReadFramedBlock(f *os.File, b BlockFrame, raw []byte) ([]byte, error) {
	hdr := make([]byte, binary.MaxVarintLen64*3)
	n, err := f.ReadAt(hdr, b.Offset)
	if err != nil && err != io.EOF {
		return nil, err
	}
	hdr = hdr[:n]
	r := NewByteReader(hdr)
	rawLen, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	compLen, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	crcHdr, err := r.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	if int(rawLen) != b.RawLen || int(compLen) != b.CompLen || uint32(crcHdr) != b.CRC {
		return nil, fmt.Errorf("block at %d: frame header disagrees with footer index", b.Offset)
	}
	comp := make([]byte, compLen)
	if _, err := f.ReadAt(comp, b.Offset+int64(r.Offset())); err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	if crc := crc32.ChecksumIEEE(comp); crc != b.CRC {
		return nil, fmt.Errorf("block at %d: payload checksum mismatch (%#x != %#x)", b.Offset, crc, b.CRC)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	if cap(raw) < int(rawLen) {
		raw = make([]byte, rawLen)
	}
	raw = raw[:rawLen]
	if _, err := io.ReadFull(zr, raw); err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	// One extra read distinguishes "exactly rawLen bytes" from a payload
	// that kept going (footer lied about the raw size).
	if n, _ := zr.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("block at %d: payload longer than indexed %d bytes", b.Offset, rawLen)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("block at %d: %w", b.Offset, err)
	}
	return raw, nil
}

// FrameHeaderLen returns the byte length of a block's frame header (three
// uvarints whose widths depend on the values) — what verifiers need to
// recompute expected next-block offsets.
func FrameHeaderLen(b BlockFrame) int {
	return uvarintLen(uint64(b.RawLen)) + uvarintLen(uint64(b.CompLen)) + uvarintLen(uint64(b.CRC))
}

// WriteFileAtomic durably replaces dir/name: write to a temp file in the
// same directory, fsync, rename into place, fsync the directory. Readers
// never observe a partial file.
func WriteFileAtomic(dir, name string, blob []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// ByteReader is a bounds-checked cursor over a decoded block. Every read
// returns an error instead of panicking, so arbitrary (corrupt or fuzzed)
// bytes decode to a clean error, never a crash.
type ByteReader struct {
	b   []byte
	off int
}

// NewByteReader returns a cursor over b.
func NewByteReader(b []byte) *ByteReader { return &ByteReader{b: b} }

// Len returns the unread byte count.
func (r *ByteReader) Len() int { return len(r.b) - r.off }

// Offset returns the bytes consumed so far.
func (r *ByteReader) Offset() int { return r.off }

// Uvarint decodes one unsigned varint.
func (r *ByteReader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or malformed uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Varint decodes one zigzag varint.
func (r *ByteReader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("truncated or malformed varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// Byte reads one byte.
func (r *ByteReader) Byte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("truncated record at offset %d", r.off)
	}
	b := r.b[r.off]
	r.off++
	return b, nil
}

// String reads a uvarint-length-prefixed string.
func (r *ByteReader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("string length %d exceeds remaining %d bytes", n, r.Len())
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
