package corpus

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// smallOpts forces many blocks and many segments out of even a small
// corpus, so tests exercise block and segment boundaries.
var smallOpts = Options{BlockBytes: 1 << 10, SegmentBytes: 8 << 10}

// buildSyntheticCorpus builds a deterministic pseudo-random corpus shaped
// like real monitor output — repeated locations, a mix of int and string
// observations, correct and faulty runs — without importing the workload
// package (which itself depends on this one). App-corpus coverage lives in
// the external differential tests.
func buildSyntheticCorpus(t *testing.T, runs int) *trace.Corpus {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	funcs := []string{"parse", "route", "alloc", "copy", "emit"}
	vars := []string{"len", "idx", "buf", "mode", "tag"}
	c := &trace.Corpus{Program: "synthetic"}
	for id := 0; id < runs; id++ {
		run := trace.Run{ID: id, Faulty: id%2 == 1}
		if run.Faulty {
			run.FaultKind = "overflow"
			run.FaultFunc = funcs[rng.Intn(len(funcs))]
		}
		for r, nr := 0, 30+rng.Intn(50); r < nr; r++ {
			rec := trace.Record{Loc: trace.Location{
				Func: funcs[rng.Intn(len(funcs))],
				Kind: trace.EventEnter,
			}}
			if rng.Intn(3) == 0 {
				rec.Loc.Kind = trace.EventLeave
			}
			for o, no := 0, rng.Intn(5); o < no; o++ {
				obs := trace.Observation{
					Var:   vars[rng.Intn(len(vars))],
					Class: trace.VarClass(1 + rng.Intn(3)),
				}
				if rng.Intn(5) == 0 {
					obs.Kind = trace.ValueString
					obs.Str = fmt.Sprintf("s-%d", rng.Intn(8))
				} else {
					// Full-entropy values keep gzip from collapsing the
					// corpus below one segment's worth of blocks.
					obs.Kind = trace.ValueInt
					obs.Int = rng.Int63n(1<<40) - (1 << 39)
				}
				rec.Obs = append(rec.Obs, obs)
			}
			run.Records = append(run.Records, rec)
		}
		c.Runs = append(c.Runs, run)
	}
	return c
}

func ingest(t *testing.T, c *trace.Corpus, opts Options) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), c.Program)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	w := s.NewWriter(opts)
	for i := range c.Runs {
		if err := w.Append(&c.Runs[i]); err != nil {
			t.Fatalf("Append run %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s := ingest(t, c, smallOpts)
	if len(s.Segments()) < 2 {
		t.Fatalf("want multiple segments from smallOpts, got %d", len(s.Segments()))
	}

	// Reopen from disk: nothing should depend on in-process state.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := s2.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if got.Program != c.Program {
		t.Fatalf("program %q, want %q", got.Program, c.Program)
	}
	if !reflect.DeepEqual(got.Runs, c.Runs) {
		t.Fatalf("materialized runs differ from ingested corpus")
	}
	if n := s2.TotalRuns(); n != len(c.Runs) {
		t.Fatalf("TotalRuns = %d, want %d", n, len(c.Runs))
	}
	runs, locs, vars, err := s2.Counts()
	if err != nil {
		t.Fatalf("Counts: %v", err)
	}
	wantLocs := len(c.LocationSet())
	if runs != len(c.Runs) || locs != wantLocs || vars == 0 {
		t.Fatalf("Counts = (%d, %d, %d), want (%d, %d, >0)", runs, locs, vars, len(c.Runs), wantLocs)
	}
}

func TestStoreRoundTripStringsAndEdgeCases(t *testing.T) {
	// Synthetic corpus hitting what app corpora may not: string values,
	// empty runs, empty observation lists, negative ints, zero-length
	// strings, non-faulty runs with no records.
	c := &trace.Corpus{Program: "synthetic", Runs: []trace.Run{
		{ID: 0, Faulty: false},
		{ID: 1, Faulty: true, FaultKind: "overflow", FaultFunc: "f", Records: []trace.Record{
			{Loc: trace.Location{Func: "f", Kind: trace.EventEnter}, Obs: []trace.Observation{
				{Var: "s", Class: trace.ClassParam, Kind: trace.ValueString, Str: "hello world"},
				{Var: "n", Class: trace.ClassGlobal, Kind: trace.ValueInt, Int: -12345678},
				{Var: "e", Class: trace.ClassReturn, Kind: trace.ValueString, Str: ""},
			}},
			{Loc: trace.Location{Func: "g", Kind: trace.EventLeave}},
		}},
		{ID: 2, Faulty: true, FaultKind: "", FaultFunc: "", Records: nil},
	}}
	s := ingest(t, c, Options{})
	got, err := s.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	if !reflect.DeepEqual(got.Runs, c.Runs) {
		t.Fatalf("round trip altered runs:\n got %+v\nwant %+v", got.Runs, c.Runs)
	}
}

func TestRandomAccess(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s := ingest(t, c, smallOpts)
	for _, i := range []int{0, 1, len(c.Runs) / 2, len(c.Runs) - 1} {
		run, err := s.RunAt(i)
		if err != nil {
			t.Fatalf("RunAt(%d): %v", i, err)
		}
		if !reflect.DeepEqual(*run, c.Runs[i]) {
			t.Fatalf("RunAt(%d) differs from corpus run", i)
		}
	}
	if _, err := s.RunAt(len(c.Runs)); err == nil {
		t.Fatalf("RunAt past end: want error")
	}
	if _, err := s.RunAt(-1); err == nil {
		t.Fatalf("RunAt(-1): want error")
	}
}

func TestConcurrentWriters(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s, err := Create(t.TempDir(), c.Program)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	const writers = 4
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w := s.NewWriter(smallOpts)
			for i := wi; i < len(c.Runs); i += writers {
				if err := w.Append(&c.Runs[i]); err != nil {
					errs[wi] = err
					return
				}
			}
			errs[wi] = w.Close()
		}(wi)
	}
	wg.Wait()
	for wi, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", wi, err)
		}
	}
	if n := s.TotalRuns(); n != len(c.Runs) {
		t.Fatalf("TotalRuns = %d, want %d", n, len(c.Runs))
	}
	// Every run must come back exactly once (order across writers is
	// seal-order, not append-order).
	got, err := s.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	seen := make(map[int]bool)
	for i := range got.Runs {
		if seen[got.Runs[i].ID] {
			t.Fatalf("run %d appears twice", got.Runs[i].ID)
		}
		seen[got.Runs[i].ID] = true
		if !reflect.DeepEqual(got.Runs[i], c.Runs[got.Runs[i].ID]) {
			t.Fatalf("run %d corrupted by concurrent ingest", got.Runs[i].ID)
		}
	}
	if rep, err := s.Verify(); err != nil || !rep.OK() {
		t.Fatalf("Verify after concurrent ingest: err=%v problems=%v", err, rep.AllProblems())
	}
}

func TestVerifyDetectsCorruptedBlock(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s := ingest(t, c, smallOpts)
	if rep, err := s.Verify(); err != nil || !rep.OK() {
		t.Fatalf("clean store must verify: err=%v problems=%v", err, rep.AllProblems())
	}

	// Flip one byte inside the first block's compressed payload of the
	// first segment. The footer stays valid, so only the payload CRC can
	// catch this.
	name := s.Segments()[0].Name
	path := filepath.Join(s.Dir(), name)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := openSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	off := seg.footer.Blocks[0].Offset + 8 // inside the payload area
	blob[off] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatalf("Open after corruption: %v", err)
	}
	rep, err := s2.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatalf("Verify missed a corrupted block")
	}
	found := false
	for _, p := range rep.AllProblems() {
		if strings.Contains(p, name) {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption not attributed to %s: %v", name, rep.AllProblems())
	}
}

func TestTornWriteRecovery(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s := ingest(t, c, smallOpts)
	segs := s.Segments()
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %d", len(segs))
	}

	// Simulate a torn write: the last sealed segment loses its tail
	// mid-block (trailer and footer gone).
	last := segs[len(segs)-1]
	path := filepath.Join(s.Dir(), last.Name)
	if err := os.Truncate(path, last.Bytes/2); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatalf("Open with torn segment: %v", err)
	}

	// Earlier segments stay fully readable.
	intact := 0
	for _, info := range segs[:len(segs)-1] {
		intact += info.Runs
	}
	it := s2.Iter()
	defer it.Close()
	got := 0
	var iterErr error
	for {
		_, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			iterErr = err
			break
		}
		got++
	}
	if got != intact {
		t.Fatalf("read %d runs before torn segment, want %d", got, intact)
	}
	if iterErr == nil || !strings.Contains(iterErr.Error(), "torn") {
		t.Fatalf("iterator error = %v, want torn-segment error", iterErr)
	}

	// The torn segment itself opens with a clean, descriptive error.
	if _, err := openSegment(path); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("openSegment(torn) = %v, want torn-segment error", err)
	}

	// Verify flags it without failing the whole scan.
	rep, err := s2.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatalf("Verify missed the torn segment")
	}
}

func TestWriterCrashLeavesNoVisibleSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	w := s.NewWriter(Options{})
	run := trace.Run{ID: 0, Records: []trace.Record{{Loc: trace.Location{Func: "f", Kind: trace.EventEnter}}}}
	if err := w.Append(&run); err != nil {
		t.Fatal(err)
	}
	// Abandon the writer without Close: the in-progress segment must be at
	// worst an invisible temp file, never a manifest entry or a *.seg.
	if n := s.TotalRuns(); n != 0 {
		t.Fatalf("unsealed runs visible in manifest: %d", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			t.Fatalf("unsealed segment visible as %s", e.Name())
		}
	}
}

func TestCompact(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s, err := Create(t.TempDir(), c.Program)
	if err != nil {
		t.Fatal(err)
	}
	// Seal one tiny segment per few runs: worst-case fragmentation.
	w := s.NewWriter(Options{})
	for i := range c.Runs {
		if err := w.Append(&c.Runs[i]); err != nil {
			t.Fatal(err)
		}
		if (i+1)%5 == 0 {
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before := len(s.Segments())
	if before < 10 {
		t.Fatalf("want heavy fragmentation, got %d segments", before)
	}

	res, err := s.Compact(Options{})
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.SegmentsBefore != before || res.SegmentsAfter >= before {
		t.Fatalf("compaction did not consolidate: %+v", res)
	}
	got, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Runs, c.Runs) {
		t.Fatalf("compaction changed run content or order")
	}
	// Old files are gone; store still verifies.
	if rep, err := s.Verify(); err != nil || !rep.OK() {
		t.Fatalf("Verify after compact: err=%v problems=%v", err, rep.AllProblems())
	}
	entries, _ := os.ReadDir(s.Dir())
	segFiles := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			segFiles++
		}
	}
	if segFiles != res.SegmentsAfter {
		t.Fatalf("%d .seg files on disk, manifest has %d", segFiles, res.SegmentsAfter)
	}
}

func TestCreateReopenAndMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir, "polymorph")
	if err != nil {
		t.Fatal(err)
	}
	w := s.NewWriter(Options{})
	run := trace.Run{ID: 0, Records: []trace.Record{{Loc: trace.Location{Func: "f", Kind: trace.EventEnter}}}}
	if err := w.Append(&run); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Create(dir, "polymorph")
	if err != nil {
		t.Fatalf("reopen via Create: %v", err)
	}
	if s2.TotalRuns() != 1 {
		t.Fatalf("reopened store lost runs")
	}
	if _, err := Create(dir, "ctree"); err == nil {
		t.Fatalf("Create with mismatched program: want error")
	}
}

func TestIteratorBoundedMemory(t *testing.T) {
	c := buildSyntheticCorpus(t, 60)
	s := ingest(t, c, smallOpts)
	it := s.Iter()
	defer it.Close()
	for {
		if _, err := it.Next(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
	}
	// A block is flushed as soon as the raw buffer crosses BlockBytes, so
	// one run's encoding is the only possible overshoot.
	maxRun := 0
	for i := range c.Runs {
		if n := len(appendRun(nil, &c.Runs[i], newDict())); n > maxRun {
			maxRun = n
		}
	}
	if max := it.MaxBlockBytes(); max > smallOpts.BlockBytes+maxRun {
		t.Fatalf("peak block buffer %d exceeds BlockBytes %d + largest run %d", max, smallOpts.BlockBytes, maxRun)
	}
	if it.ScannedBytes() <= 0 || it.ScannedBytes() > s.TotalBytes() {
		t.Fatalf("ScannedBytes = %d, store holds %d", it.ScannedBytes(), s.TotalBytes())
	}
}

func TestManifestOrderAfterReopen(t *testing.T) {
	// Segment names must sort by sequence even past 6 digits' worth of
	// lexicographic traps; spot-check the parser.
	for _, tc := range []struct {
		name string
		want int
	}{{"seg-000000.seg", 0}, {"seg-000042.seg", 42}, {"seg-123456.seg", 123456}, {"other.seg", -1}, {"seg-xyz.seg", -1}} {
		if got := segmentSeq(tc.name); got != tc.want {
			t.Errorf("segmentSeq(%q) = %d, want %d", tc.name, got, tc.want)
		}
	}
}
