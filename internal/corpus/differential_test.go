package corpus_test

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/pathid"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is an external test package: it drives real app corpora through
// the workload package, which itself depends on internal/corpus, so it
// cannot live in package corpus without an import cycle.

// fiveApps is the bundled evaluation set the acceptance criteria pin:
// byte-identical streaming output on every one of them.
var fiveApps = []string{"polymorph", "ctree", "thttpd", "grep", "msgtool"}

// diffOpts forces many blocks and segments out of even a small corpus.
var diffOpts = corpus.Options{BlockBytes: 1 << 10, SegmentBytes: 8 << 10}

func buildAppCorpus(t *testing.T, app string) *trace.Corpus {
	t.Helper()
	a, err := apps.Get(app)
	if err != nil {
		t.Fatalf("apps.Get(%s): %v", app, err)
	}
	c, err := workload.BuildCorpus(a, workload.Options{SampleRate: 1.0, Seed: 7, Correct: 30, Faulty: 30})
	if err != nil {
		t.Fatalf("BuildCorpus(%s): %v", app, err)
	}
	return c
}

func ingestApp(t *testing.T, c *trace.Corpus, opts corpus.Options) *corpus.Store {
	t.Helper()
	s, err := corpus.Create(t.TempDir(), c.Program)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	w := s.NewWriter(opts)
	for i := range c.Runs {
		if err := w.Append(&c.Runs[i]); err != nil {
			t.Fatalf("Append run %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return s
}

// renderAnalysis serializes an Analysis canonically so two analyses can be
// compared byte-for-byte (every field of every predicate, in rank order;
// %v on float64 prints the shortest uniquely-identifying decimal, so any
// bit difference in scores or thresholds shows up).
func renderAnalysis(a *stats.Analysis) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "runs=%d locs=%d vars=%d\n", a.Runs, a.Locations, a.Variables)
	for i, p := range a.Predicates {
		fmt.Fprintf(&buf, "%3d %s | op=%d thr=%v score=%v err=%d nc=%d nf=%d class=%d str=%v\n",
			i, p.Key(), p.Op, p.Threshold, p.Score, p.Err, p.CountC, p.CountF, p.Class, p.IsString)
	}
	return buf.Bytes()
}

// renderGraph serializes a transition graph canonically: nodes in intern
// order, successor lists in their sorted order, entries, failure.
func renderGraph(g *pathid.Graph) []byte {
	var buf bytes.Buffer
	for i, n := range g.Nodes {
		fmt.Fprintf(&buf, "node %d %s\n", i, n)
	}
	for _, n := range g.Nodes {
		for _, e := range g.Succ[n] {
			fmt.Fprintf(&buf, "edge %s -> %s count=%d conf=%v\n", e.From, e.To, e.Count, e.Confidence)
		}
	}
	for _, e := range g.Entries {
		fmt.Fprintf(&buf, "entry %s\n", e)
	}
	fmt.Fprintf(&buf, "failure %s\n", g.Failure)
	return buf.Bytes()
}

// TestStreamingDifferential is the acceptance-criteria pin: for all five
// bundled apps, streaming analysis over the on-disk store must produce
// byte-identical predicate rankings and transition graphs to the in-memory
// path, with the reader's peak buffer bounded by the block size — never
// the corpus.
func TestStreamingDifferential(t *testing.T) {
	for _, app := range fiveApps {
		t.Run(app, func(t *testing.T) {
			c := buildAppCorpus(t, app)
			s := ingestApp(t, c, diffOpts)

			// In-memory reference path.
			wantA := stats.Analyze(c)
			wantG := pathid.BuildGraph(c, pathid.Config{})

			// Streaming path over the store.
			it := s.Iter()
			gotA, err := stats.AnalyzeStream(context.Background(), it, stats.StreamOpts{})
			if err != nil {
				t.Fatalf("AnalyzeStream: %v", err)
			}
			it.Close()
			it2 := s.Iter()
			gotG, err := pathid.BuildGraphStream(it2, pathid.Config{})
			if err != nil {
				t.Fatalf("BuildGraphStream: %v", err)
			}

			if !bytes.Equal(renderAnalysis(gotA), renderAnalysis(wantA)) {
				t.Errorf("streaming predicate ranking differs from in-memory:\n--- streaming ---\n%s--- in-memory ---\n%s",
					renderAnalysis(gotA), renderAnalysis(wantA))
			}
			if !reflect.DeepEqual(gotA, wantA) {
				t.Errorf("Analysis structs differ beyond rendering")
			}
			if !bytes.Equal(renderGraph(gotG), renderGraph(wantG)) {
				t.Errorf("streaming transition graph differs from in-memory:\n--- streaming ---\n%s--- in-memory ---\n%s",
					renderGraph(gotG), renderGraph(wantG))
			}

			// Bounded memory: the iterator never buffered more than one
			// block (+ one run's overshoot), far below the corpus size.
			maxRun := 0
			for i := range c.Runs {
				if n := corpus.EncodedRunSize(&c.Runs[i]); n > maxRun {
					maxRun = n
				}
			}
			if max := it2.MaxBlockBytes(); max > diffOpts.BlockBytes+maxRun {
				t.Errorf("peak block buffer %d exceeds BlockBytes %d + largest run %d", max, diffOpts.BlockBytes, maxRun)
			}
			it2.Close()

			// Candidate construction downstream of the shared graph must
			// agree too (BuildFromGraph is the common back half).
			wantR, wantErr := pathid.Build(c, wantA, pathid.Config{})
			gotR, gotErr := pathid.BuildFromGraph(gotG, gotA, pathid.Config{})
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("Build err %v vs BuildFromGraph err %v", wantErr, gotErr)
			}
			if wantErr == nil {
				if len(gotR.Candidates) != len(wantR.Candidates) {
					t.Fatalf("candidate count %d vs %d", len(gotR.Candidates), len(wantR.Candidates))
				}
				for i := range wantR.Candidates {
					if gotR.Candidates[i].String() != wantR.Candidates[i].String() {
						t.Errorf("candidate %d differs:\n%s\nvs\n%s", i, gotR.Candidates[i], wantR.Candidates[i])
					}
				}
			}
		})
	}
}

// TestStreamingFallbackMode forces every sketch to spill to exact raw mode
// (MaxDistinct=1) and checks the output is still byte-identical — the cap
// trades memory layout, never results.
func TestStreamingFallbackMode(t *testing.T) {
	c := buildAppCorpus(t, "polymorph")
	s := ingestApp(t, c, diffOpts)

	want := stats.Analyze(c)
	sa := stats.NewStreamAnalyzer(stats.StreamOpts{MaxDistinct: 1})
	it := s.Iter()
	for {
		run, err := it.Next()
		if err != nil {
			break
		}
		sa.Add(run)
	}
	it.Close()
	if sa.Fallbacks() == 0 {
		t.Fatalf("MaxDistinct=1 forced no fallbacks — cap not exercised")
	}
	got := sa.Finish()
	if !bytes.Equal(renderAnalysis(got), renderAnalysis(want)) {
		t.Errorf("fallback-mode analysis differs from in-memory:\n--- fallback ---\n%s--- in-memory ---\n%s",
			renderAnalysis(got), renderAnalysis(want))
	}
}

// TestStreamingFromCorpusIter checks the in-memory Corpus satisfies the
// same iterator seam (trace.RunIterator) with identical results.
func TestStreamingFromCorpusIter(t *testing.T) {
	c := buildAppCorpus(t, "grep")
	want := stats.Analyze(c)
	got, err := stats.AnalyzeStream(context.Background(), c.Iter(), stats.StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderAnalysis(got), renderAnalysis(want)) {
		t.Errorf("corpus-iterator streaming differs from in-memory")
	}
	var _ trace.RunIterator = c.Iter()
}
