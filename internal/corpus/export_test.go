package corpus

import "repro/internal/trace"

// EncodedRunSize reports one run's encoded size against a fresh dictionary,
// for external tests asserting the iterator's bounded-memory invariant
// (peak buffer <= BlockBytes + largest single-run encoding).
func EncodedRunSize(r *trace.Run) int {
	return len(appendRun(nil, r, newDict()))
}
