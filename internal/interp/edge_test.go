package interp

import (
	"testing"

	"repro/internal/bytecode"
)

func TestForLoopScoping(t *testing.T) {
	// The for-init variable lives in its own scope; an outer variable of
	// the same name is untouched.
	src := `
func main() int {
  int i = 100;
  int s = 0;
  for (int i = 0; i < 3; i = i + 1) { s = s + i; }
  return i + s;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 103 {
		t.Errorf("ret = %d, want 103", res.Ret.Int)
	}
}

func TestNestedLoopsBreakContinue(t *testing.T) {
	src := `
func main() int {
  int total = 0;
  for (int i = 0; i < 5; i = i + 1) {
    int j = 0;
    while (j < 5) {
      j = j + 1;
      if (j == 2) { continue; }
      if (j == 4) { break; }
      total = total + 1;
    }
  }
  return total;
}`
	// Per outer iteration: j=1 counts, j=2 skipped, j=3 counts, j=4 breaks
	// => 2 per iteration x 5.
	res := run(t, src, nil)
	if res.Ret.Int != 10 {
		t.Errorf("ret = %d, want 10", res.Ret.Int)
	}
}

func TestGlobalInitExpressions(t *testing.T) {
	// Global initializers may reference earlier globals.
	src := `
global int base = 10;
global int doubled = base * 2;
global string greeting = "he" + "llo";
func main() int {
  if (greeting != "hello") { return -1; }
  return doubled;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 20 {
		t.Errorf("ret = %d, want 20", res.Ret.Int)
	}
}

func TestElseIfChains(t *testing.T) {
	src := `
func classify(int x) int {
  if (x < 0) { return 0; }
  else if (x == 0) { return 1; }
  else if (x < 10) { return 2; }
  else { return 3; }
}
func main() int {
  return classify(-5) * 1000 + classify(0) * 100 + classify(5) * 10 + classify(50);
}`
	res := run(t, src, nil)
	if res.Ret.Int != 123 {
		t.Errorf("ret = %d, want 123 (0,1,2,3 digits)", res.Ret.Int)
	}
}

func TestBuffersIndependentAcrossCalls(t *testing.T) {
	// Each activation allocates a fresh buffer.
	src := `
func fill(int v) int {
  buf b[4];
  bufwrite(b, 0, v);
  return bufread(b, 0);
}
func main() int {
  int a = fill(7);
  int c = fill(9);
  return a * 10 + c;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 79 {
		t.Errorf("ret = %d, want 79", res.Ret.Int)
	}
}

func TestBufferSharedByReference(t *testing.T) {
	// Buffers pass by reference: callee writes are visible to the caller.
	src := `
func poke(buf b, int v) void {
  bufwrite(b, 2, v);
  return;
}
func main() int {
  buf b[4];
  poke(b, 55);
  return bufread(b, 2);
}`
	res := run(t, src, nil)
	if res.Ret.Int != 55 {
		t.Errorf("ret = %d, want 55", res.Ret.Int)
	}
}

func TestStepCountingExact(t *testing.T) {
	// Steps are deterministic; the same program yields the same count.
	prog := bytecode.MustCompile("steps", `func main() int { return 1 + 2; }`)
	r1, _ := Run(prog, nil, Config{})
	r2, _ := Run(prog, nil, Config{})
	if r1.Steps != r2.Steps || r1.Steps == 0 {
		t.Errorf("steps %d vs %d", r1.Steps, r2.Steps)
	}
}

func TestMaxStepsBoundary(t *testing.T) {
	prog := bytecode.MustCompile("bound", `func main() int { return 1 + 2; }`)
	full, err := Run(prog, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly enough steps: succeeds.
	if _, err := Run(prog, nil, Config{MaxSteps: full.Steps}); err != nil {
		t.Errorf("exact budget failed: %v", err)
	}
	// One short: step-limit error.
	if _, err := Run(prog, nil, Config{MaxSteps: full.Steps - 1}); err == nil {
		t.Error("under-budget run succeeded")
	}
}

func TestVoidFunctionCalls(t *testing.T) {
	src := `
global int effects = 0;
func touch() void {
  effects = effects + 1;
  return;
}
func noReturnStmt() void {
  effects = effects + 10;
}
func main() int {
  touch();
  noReturnStmt();
  return effects;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 11 {
		t.Errorf("ret = %d, want 11", res.Ret.Int)
	}
}

func TestImplicitReturnValues(t *testing.T) {
	src := `
func fallOffInt() int { print("x"); }
func fallOffStr() string { print("y"); }
func main() int {
  if (fallOffStr() != "") { return -1; }
  return fallOffInt();
}`
	res := run(t, src, nil)
	if res.Ret.Int != 0 {
		t.Errorf("implicit zero return = %d", res.Ret.Int)
	}
}

func TestNegativeModuloCSemantics(t *testing.T) {
	tests := []struct {
		a, b, want int64
	}{
		{7, 3, 1},
		{-7, 3, -1}, // C truncation
		{7, -3, 1},
		{-7, -3, -1},
	}
	for _, tt := range tests {
		src := `func main() int { int a = ` + itoa(tt.a) + `; int b = ` + itoa(tt.b) + `; return a % b; }`
		res := run(t, src, nil)
		if res.Ret.Int != tt.want {
			t.Errorf("%d %% %d = %d, want %d", tt.a, tt.b, res.Ret.Int, tt.want)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "0 - " + itoa(-v)
	}
	digits := ""
	for v > 0 {
		digits = string(rune('0'+v%10)) + digits
		v /= 10
	}
	if digits == "" {
		digits = "0"
	}
	return digits
}

func TestDeepCallChainWithinLimit(t *testing.T) {
	src := `
func down(int n) int {
  if (n == 0) { return 0; }
  return down(n - 1) + 1;
}
func main() int { return down(100); }`
	res := run(t, src, nil)
	if res.Ret.Int != 100 {
		t.Errorf("ret = %d, want 100", res.Ret.Int)
	}
}
