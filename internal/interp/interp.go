// Package interp is the concrete MiniC virtual machine. It executes compiled
// bytecode over concrete inputs and reports program faults (buffer
// overflows, failed assertions, aborts) — the "failure manifestations" of
// the paper's fault/failure model (§II, Fig. 1). The program monitor drives
// this VM to produce runtime logs.
package interp

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/bytecode"
	"repro/internal/minic"
	"repro/internal/trace"
)

// ValueKind is the dynamic type of a runtime value.
type ValueKind int

// Value kinds.
const (
	KindInt ValueKind = iota + 1
	KindString
	KindBuf
)

// Buffer is a fixed-capacity array of byte-sized cells allocated by a
// MiniC `buf` declaration. Writing outside [0, Cap) is the buffer-overflow
// fault the evaluation programs contain.
type Buffer struct {
	Cap  int
	Data []int64
}

// NewBuffer allocates a zeroed buffer.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{Cap: capacity, Data: make([]int64, capacity)}
}

// Value is a concrete runtime value.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
	Buf  *Buffer
}

// IntVal constructs an int value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// StrVal constructs a string value.
func StrVal(s string) Value { return Value{Kind: KindString, Str: s} }

// BufVal constructs a buffer reference value.
func BufVal(b *Buffer) Value { return Value{Kind: KindBuf, Buf: b} }

// String renders the value for print().
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindString:
		return v.Str
	case KindBuf:
		return fmt.Sprintf("buf[%d]", v.Buf.Cap)
	default:
		return "<invalid>"
	}
}

// FaultKind classifies a program failure.
type FaultKind int

// Fault kinds. FaultNone means the run completed normally.
const (
	FaultNone FaultKind = iota
	FaultBufferOverflow
	FaultBufferOOBRead
	FaultAssert
	FaultAbort
	FaultDivZero
	FaultStringIndex
)

var faultNames = map[FaultKind]string{
	FaultNone:           "none",
	FaultBufferOverflow: "buffer-overflow",
	FaultBufferOOBRead:  "buffer-oob-read",
	FaultAssert:         "assertion-failure",
	FaultAbort:          "abort",
	FaultDivZero:        "division-by-zero",
	FaultStringIndex:    "string-index-oob",
}

// String returns a stable name used in run logs.
func (f FaultKind) String() string {
	if s, ok := faultNames[f]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(f))
}

// Input supplies the program's external environment: named symbolic-input
// channels (input_int / input_string), environment variables, and
// command-line arguments.
type Input struct {
	Ints map[string]int64
	Strs map[string]string
	Env  map[string]string
	Args []string
}

// Int returns the named int input (zero if absent).
func (in *Input) Int(name string) int64 {
	if in == nil {
		return 0
	}
	return in.Ints[name]
}

// Str returns the named string input ("" if absent).
func (in *Input) Str(name string) string {
	if in == nil {
		return ""
	}
	return in.Strs[name]
}

// EnvVar returns the named environment variable ("" if absent).
func (in *Input) EnvVar(name string) string {
	if in == nil {
		return ""
	}
	return in.Env[name]
}

// Arg returns argument i ("" if out of range).
func (in *Input) Arg(i int64) string {
	if in == nil || i < 0 || i >= int64(len(in.Args)) {
		return ""
	}
	return in.Args[i]
}

// HookEvent is delivered to the instrumentation hook at function entry and
// exit — the Fjalar-style observation points.
type HookEvent struct {
	Kind    trace.EventKind
	Fn      *bytecode.Fn
	Params  []Value // valid at entry
	Ret     *Value  // valid at exit for non-void functions
	Globals []Value // snapshot reference (do not mutate)
}

// Hook receives instrumentation events.
type Hook func(HookEvent)

// Config controls a VM run.
type Config struct {
	// MaxSteps bounds executed instructions (0 means DefaultMaxSteps).
	MaxSteps int
	// MaxDepth bounds call depth (0 means DefaultMaxDepth).
	MaxDepth int
	// Hook, when non-nil, observes function entry/exit events.
	Hook Hook
	// CollectOutput records print() output into Result.Output.
	CollectOutput bool
}

// Default resource limits.
const (
	DefaultMaxSteps = 2_000_000
	DefaultMaxDepth = 256
)

// Resource-exhaustion errors (engine limits, not program faults).
var (
	ErrStepLimit  = errors.New("interp: step limit exceeded")
	ErrStackDepth = errors.New("interp: call depth exceeded")
)

// Result summarizes a completed run.
type Result struct {
	Fault     FaultKind
	FaultFunc string
	FaultPos  minic.Pos
	Ret       Value
	Steps     int
	Output    []string
}

// Faulty reports whether the run ended in a program fault.
func (r *Result) Faulty() bool { return r.Fault != FaultNone }

type frame struct {
	fn     *bytecode.Fn
	pc     int
	locals []Value
	stack  []Value
}

type vm struct {
	prog    *bytecode.Program
	input   *Input
	cfg     Config
	globals []Value
	frames  []*frame
	steps   int
	out     []string
}

// programFault carries a fault out of the execution loop.
type programFault struct {
	kind FaultKind
	fn   string
	pos  minic.Pos
}

func (f *programFault) Error() string {
	return fmt.Sprintf("fault %s in %s at %s", f.kind, f.fn, f.pos)
}

// Run executes the program's main function over the given input.
func Run(p *bytecode.Program, in *Input, cfg Config) (*Result, error) {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultMaxDepth
	}
	m := &vm{prog: p, input: in, cfg: cfg, globals: make([]Value, len(p.Globals))}
	for i, g := range p.Globals {
		if g.Type == minic.TypeString {
			m.globals[i] = StrVal("")
		} else {
			m.globals[i] = IntVal(0)
		}
	}
	res := &Result{}
	// Global initializers run first, uninstrumented.
	if err := m.callAndRun(p.Funcs[p.InitIndex], nil, false, res); err != nil {
		return res, err
	}
	err := m.callAndRun(p.Funcs[p.MainIndex], nil, true, res)
	res.Steps = m.steps
	res.Output = m.out
	var pf *programFault
	if errors.As(err, &pf) {
		res.Fault = pf.kind
		res.FaultFunc = pf.fn
		res.FaultPos = pf.pos
		return res, nil
	}
	return res, err
}

// callAndRun pushes a frame for fn and runs the loop until that frame
// returns. Used for $init and main; nested calls are handled inline.
func (m *vm) callAndRun(fn *bytecode.Fn, args []Value, hook bool, res *Result) error {
	fr := m.pushFrame(fn, args)
	if hook {
		m.fireHook(trace.EventEnter, fr, nil)
	}
	base := len(m.frames) - 1
	for len(m.frames) > base {
		if err := m.step(res); err != nil {
			return err
		}
	}
	return nil
}

func (m *vm) pushFrame(fn *bytecode.Fn, args []Value) *frame {
	fr := &frame{fn: fn, locals: make([]Value, fn.NumLocals)}
	copy(fr.locals, args)
	m.frames = append(m.frames, fr)
	return fr
}

func (m *vm) fireHook(kind trace.EventKind, fr *frame, ret *Value) {
	if m.cfg.Hook == nil || fr.fn.Name == bytecode.InitFuncName {
		return
	}
	ev := HookEvent{Kind: kind, Fn: fr.fn, Globals: m.globals, Ret: ret}
	if kind == trace.EventEnter {
		ev.Params = fr.locals[:len(fr.fn.ParamNames)]
	}
	m.cfg.Hook(ev)
}

func (m *vm) top() *frame { return m.frames[len(m.frames)-1] }

func (fr *frame) push(v Value) { fr.stack = append(fr.stack, v) }

func (fr *frame) pop() Value {
	v := fr.stack[len(fr.stack)-1]
	fr.stack = fr.stack[:len(fr.stack)-1]
	return v
}

func (m *vm) fault(kind FaultKind, pos minic.Pos) error {
	return &programFault{kind: kind, fn: m.top().fn.Name, pos: pos}
}

// step executes one instruction of the top frame.
func (m *vm) step(res *Result) error {
	m.steps++
	if m.steps > m.cfg.MaxSteps {
		return ErrStepLimit
	}
	fr := m.top()
	in := fr.fn.Code[fr.pc]
	fr.pc++
	switch in.Op {
	case bytecode.OpNop:
	case bytecode.OpConstInt:
		fr.push(IntVal(in.Imm))
	case bytecode.OpConstStr:
		fr.push(StrVal(in.Str))
	case bytecode.OpLoadLocal:
		fr.push(fr.locals[in.A])
	case bytecode.OpStoreLocal:
		fr.locals[in.A] = fr.pop()
	case bytecode.OpLoadGlobal:
		fr.push(m.globals[in.A])
	case bytecode.OpStoreGlobal:
		m.globals[in.A] = fr.pop()
	case bytecode.OpNewBuf:
		fr.locals[in.A] = BufVal(NewBuffer(in.B))
	case bytecode.OpNeg:
		v := fr.pop()
		fr.push(IntVal(-v.Int))
	case bytecode.OpNot:
		v := fr.pop()
		if v.Int == 0 {
			fr.push(IntVal(1))
		} else {
			fr.push(IntVal(0))
		}
	case bytecode.OpBin:
		r := fr.pop()
		l := fr.pop()
		v, err := m.binOp(minic.BinOp(in.A), l, r, in.Pos)
		if err != nil {
			return err
		}
		fr.push(v)
	case bytecode.OpJump:
		fr.pc = in.A
	case bytecode.OpJumpZ:
		if fr.pop().Int == 0 {
			fr.pc = in.A
		}
	case bytecode.OpJumpNZ:
		if fr.pop().Int != 0 {
			fr.pc = in.A
		}
	case bytecode.OpCall:
		if len(m.frames) >= m.cfg.MaxDepth {
			return ErrStackDepth
		}
		callee := m.prog.Funcs[in.A]
		args := make([]Value, in.B)
		for i := in.B - 1; i >= 0; i-- {
			args[i] = fr.pop()
		}
		nfr := m.pushFrame(callee, args)
		m.fireHook(trace.EventEnter, nfr, nil)
	case bytecode.OpBuiltin:
		if err := m.builtin(minic.Builtin(in.A), in.B, in.Pos, res); err != nil {
			return err
		}
	case bytecode.OpReturn:
		var ret Value
		var retPtr *Value
		if in.A == 1 {
			ret = fr.pop()
			retPtr = &ret
		}
		m.fireHook(trace.EventLeave, fr, retPtr)
		m.frames = m.frames[:len(m.frames)-1]
		if len(m.frames) == 0 {
			// Base frame ($init or main) finished; callAndRun's loop exits.
			res.Ret = ret
			return nil
		}
		if retPtr != nil {
			m.top().push(ret)
		}
	case bytecode.OpPop:
		fr.pop()
	default:
		return fmt.Errorf("interp: unknown opcode %s", in.Op)
	}
	return nil
}

func boolInt(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func (m *vm) binOp(op minic.BinOp, l, r Value, pos minic.Pos) (Value, error) {
	// String operations.
	if l.Kind == KindString || r.Kind == KindString {
		switch op {
		case minic.OpAdd:
			return StrVal(l.Str + r.Str), nil
		case minic.OpEq:
			return boolInt(l.Str == r.Str), nil
		case minic.OpNeq:
			return boolInt(l.Str != r.Str), nil
		default:
			return Value{}, fmt.Errorf("interp: invalid string operator %s at %s", op, pos)
		}
	}
	a, b := l.Int, r.Int
	switch op {
	case minic.OpAdd:
		return IntVal(a + b), nil
	case minic.OpSub:
		return IntVal(a - b), nil
	case minic.OpMul:
		return IntVal(a * b), nil
	case minic.OpDiv:
		if b == 0 {
			return Value{}, m.fault(FaultDivZero, pos)
		}
		return IntVal(a / b), nil
	case minic.OpMod:
		if b == 0 {
			return Value{}, m.fault(FaultDivZero, pos)
		}
		return IntVal(a % b), nil
	case minic.OpEq:
		return boolInt(a == b), nil
	case minic.OpNeq:
		return boolInt(a != b), nil
	case minic.OpLt:
		return boolInt(a < b), nil
	case minic.OpLe:
		return boolInt(a <= b), nil
	case minic.OpGt:
		return boolInt(a > b), nil
	case minic.OpGe:
		return boolInt(a >= b), nil
	default:
		return Value{}, fmt.Errorf("interp: unknown operator %s at %s", op, pos)
	}
}

func (m *vm) builtin(b minic.Builtin, nargs int, pos minic.Pos, res *Result) error {
	fr := m.top()
	args := make([]Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = fr.pop()
	}
	switch b {
	case minic.BuiltinLen:
		fr.push(IntVal(int64(len(args[0].Str))))
	case minic.BuiltinChar:
		s, i := args[0].Str, args[1].Int
		if i < 0 || i >= int64(len(s)) {
			return m.fault(FaultStringIndex, pos)
		}
		fr.push(IntVal(int64(s[i])))
	case minic.BuiltinSubstr:
		s := args[0].Str
		i, j := args[1].Int, args[2].Int
		// Clamped semantics: out-of-range bounds are snapped to the valid
		// range rather than faulting (convenient for app code).
		if i < 0 {
			i = 0
		}
		if j > int64(len(s)) {
			j = int64(len(s))
		}
		if i > j {
			i = j
		}
		fr.push(StrVal(s[i:j]))
	case minic.BuiltinConcat:
		fr.push(StrVal(args[0].Str + args[1].Str))
	case minic.BuiltinStreq:
		fr.push(boolInt(args[0].Str == args[1].Str))
	case minic.BuiltinAtoi:
		fr.push(IntVal(atoi(args[0].Str)))
	case minic.BuiltinInputInt:
		fr.push(IntVal(m.input.Int(args[0].Str)))
	case minic.BuiltinInputString:
		fr.push(StrVal(m.input.Str(args[0].Str)))
	case minic.BuiltinEnv:
		fr.push(StrVal(m.input.EnvVar(args[0].Str)))
	case minic.BuiltinArg:
		fr.push(StrVal(m.input.Arg(args[0].Int)))
	case minic.BuiltinNargs:
		var n int64
		if m.input != nil {
			n = int64(len(m.input.Args))
		}
		fr.push(IntVal(n))
	case minic.BuiltinPrint:
		if m.cfg.CollectOutput {
			m.out = append(m.out, args[0].String())
		}
	case minic.BuiltinBufWrite:
		buf, i, v := args[0].Buf, args[1].Int, args[2].Int
		if i < 0 || i >= int64(buf.Cap) {
			return m.fault(FaultBufferOverflow, pos)
		}
		buf.Data[i] = v
	case minic.BuiltinBufRead:
		buf, i := args[0].Buf, args[1].Int
		if i < 0 || i >= int64(buf.Cap) {
			return m.fault(FaultBufferOOBRead, pos)
		}
		fr.push(IntVal(buf.Data[i]))
	case minic.BuiltinBufCap:
		fr.push(IntVal(int64(args[0].Buf.Cap)))
	case minic.BuiltinBufStr:
		buf, n := args[0].Buf, args[1].Int
		if n < 0 {
			n = 0
		}
		if n > int64(buf.Cap) {
			n = int64(buf.Cap)
		}
		bs := make([]byte, n)
		for i := int64(0); i < n; i++ {
			bs[i] = byte(buf.Data[i])
		}
		fr.push(StrVal(string(bs)))
	case minic.BuiltinAssert:
		if args[0].Int == 0 {
			return m.fault(FaultAssert, pos)
		}
	case minic.BuiltinAbort:
		return m.fault(FaultAbort, pos)
	default:
		return fmt.Errorf("interp: unknown builtin %d", int(b))
	}
	return nil
}

// atoi implements C-style leading-integer parsing: optional sign, digits,
// stopping at the first non-digit; returns 0 for no digits.
func atoi(s string) int64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
	}
	if i == start {
		return 0
	}
	if neg {
		return -v
	}
	return v
}
