package interp

import (
	"encoding/json"
	"fmt"
	"os"
)

// inputJSON is the serialized form of an Input. String values are stored
// as UTF-8 when printable and base64 otherwise via Go's default []byte
// handling; for simplicity and diffability, values here are plain strings
// (witness strings in this repository are byte strings that JSON escapes
// losslessly since Go strings marshal as UTF-8 with replacement — to stay
// exact we store byte slices).
type inputJSON struct {
	Ints map[string]int64  `json:"ints,omitempty"`
	Strs map[string][]byte `json:"strs,omitempty"`
	Env  map[string][]byte `json:"env,omitempty"`
	Args [][]byte          `json:"args,omitempty"`
}

// MarshalJSON encodes the input losslessly (string values as base64-coded
// byte arrays, the encoding/json default for []byte).
func (in *Input) MarshalJSON() ([]byte, error) {
	enc := inputJSON{Ints: in.Ints}
	if in.Strs != nil {
		enc.Strs = make(map[string][]byte, len(in.Strs))
		for k, v := range in.Strs {
			enc.Strs[k] = []byte(v)
		}
	}
	if in.Env != nil {
		enc.Env = make(map[string][]byte, len(in.Env))
		for k, v := range in.Env {
			enc.Env[k] = []byte(v)
		}
	}
	for _, a := range in.Args {
		enc.Args = append(enc.Args, []byte(a))
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes an input written by MarshalJSON.
func (in *Input) UnmarshalJSON(data []byte) error {
	var dec inputJSON
	if err := json.Unmarshal(data, &dec); err != nil {
		return err
	}
	in.Ints = dec.Ints
	in.Strs = nil
	if dec.Strs != nil {
		in.Strs = make(map[string]string, len(dec.Strs))
		for k, v := range dec.Strs {
			in.Strs[k] = string(v)
		}
	}
	in.Env = nil
	if dec.Env != nil {
		in.Env = make(map[string]string, len(dec.Env))
		for k, v := range dec.Env {
			in.Env[k] = string(v)
		}
	}
	in.Args = nil
	for _, a := range dec.Args {
		in.Args = append(in.Args, string(a))
	}
	return nil
}

// SaveInput writes the input to a JSON file (witness persistence for
// replay and regression suites).
func SaveInput(path string, in *Input) error {
	blob, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return fmt.Errorf("interp: marshal input: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadInput reads an input written by SaveInput.
func LoadInput(path string) (*Input, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	in := &Input{}
	if err := json.Unmarshal(blob, in); err != nil {
		return nil, fmt.Errorf("interp: %s: %w", path, err)
	}
	return in, nil
}
