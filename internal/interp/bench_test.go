package interp

import (
	"testing"

	"repro/internal/bytecode"
)

// BenchmarkInterpLoop measures raw interpreter throughput on a tight loop.
func BenchmarkInterpLoop(b *testing.B) {
	prog := bytecode.MustCompile("loop", `
func main() int {
  int s = 0;
  for (int i = 0; i < 10000; i = i + 1) { s = s + i; }
  return s;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		res, err := Run(prog, nil, Config{})
		if err != nil || res.Ret.Int != 49995000 {
			b.Fatalf("res=%v err=%v", res, err)
		}
	}
}

// BenchmarkInterpCalls measures call/return overhead.
func BenchmarkInterpCalls(b *testing.B) {
	prog := bytecode.MustCompile("calls", `
func leaf(int x) int { return x + 1; }
func main() int {
  int s = 0;
  for (int i = 0; i < 2000; i = i + 1) { s = leaf(s); }
  return s;
}`)
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := Run(prog, nil, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpWithHook measures the monitoring overhead the paper
// motivates sampling with: full instrumentation of every call.
func BenchmarkInterpWithHook(b *testing.B) {
	prog := bytecode.MustCompile("hooked", `
func leaf(int x) int { return x + 1; }
func main() int {
  int s = 0;
  for (int i = 0; i < 2000; i = i + 1) { s = leaf(s); }
  return s;
}`)
	events := 0
	hook := func(ev HookEvent) { events++ }
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := Run(prog, nil, Config{Hook: hook}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpStringWork measures string-heavy execution (the grep
// shape).
func BenchmarkInterpStringWork(b *testing.B) {
	prog := bytecode.MustCompile("strs", `
func main() int {
  string s = input_string("s");
  int acc = 0;
  int i = 0;
  while (i < len(s)) {
    acc = acc + char(s, i);
    i = i + 1;
  }
  return acc;
}`)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	in := &Input{Strs: map[string]string{"s": string(payload)}}
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		if _, err := Run(prog, in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
