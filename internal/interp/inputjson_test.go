package interp

import (
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestInputJSONRoundTrip(t *testing.T) {
	in := &Input{
		Ints: map[string]int64{"x": -42, "y": 1 << 40},
		Strs: map[string]string{"payload": "hello\x00\xff\nworld", "empty": ""},
		Env:  map[string]string{"TAINT": string(make([]byte, 64))},
		Args: []string{"-f", "name with spaces", "\x01\x02"},
	}
	path := filepath.Join(t.TempDir(), "witness.json")
	if err := SaveInput(path, in); err != nil {
		t.Fatal(err)
	}
	back, err := LoadInput(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ints["x"] != -42 || back.Ints["y"] != 1<<40 {
		t.Errorf("ints = %v", back.Ints)
	}
	if back.Strs["payload"] != in.Strs["payload"] {
		t.Errorf("payload bytes lost: %q", back.Strs["payload"])
	}
	if back.Strs["empty"] != "" {
		t.Errorf("empty string lost")
	}
	if len(back.Env["TAINT"]) != 64 {
		t.Errorf("env bytes lost")
	}
	if len(back.Args) != 3 || back.Args[1] != "name with spaces" || back.Args[2] != "\x01\x02" {
		t.Errorf("args = %q", back.Args)
	}
}

// TestInputJSONBinaryProperty: arbitrary byte strings survive the round
// trip exactly (witnesses may contain any byte value).
func TestInputJSONBinaryProperty(t *testing.T) {
	dir := t.TempDir()
	i := 0
	f := func(payload []byte, n int64) bool {
		i++
		in := &Input{
			Ints: map[string]int64{"n": n},
			Strs: map[string]string{"p": string(payload)},
		}
		path := filepath.Join(dir, "w.json")
		if err := SaveInput(path, in); err != nil {
			return false
		}
		back, err := LoadInput(path)
		if err != nil {
			return false
		}
		return back.Strs["p"] == string(payload) && back.Ints["n"] == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoadInputErrors(t *testing.T) {
	if _, err := LoadInput(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
