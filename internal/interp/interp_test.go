package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/trace"
)

func run(t *testing.T, src string, in *Input) *Result {
	t.Helper()
	prog := bytecode.MustCompile("test", src)
	res, err := Run(prog, in, Config{CollectOutput: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2", 3},
		{"10 - 4", 6},
		{"6 * 7", 42},
		{"17 / 5", 3},
		{"17 % 5", 2},
		{"-17 / 5", -3}, // Go/C truncated division
		{"-(3 + 4)", -7},
		{"1 < 2", 1},
		{"2 < 1", 0},
		{"2 <= 2", 1},
		{"3 > 2", 1},
		{"3 >= 4", 0},
		{"5 == 5", 1},
		{"5 != 5", 0},
		{"!0", 1},
		{"!7", 0},
		{"1 && 1", 1},
		{"1 && 0", 0},
		{"0 && 1", 0},
		{"0 || 0", 0},
		{"0 || 3", 1},
		{"2 || 0", 1},
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
	}
	for _, tt := range tests {
		res := run(t, "func main() int { return "+tt.expr+"; }", nil)
		if res.Fault != FaultNone {
			t.Errorf("%s: fault %v", tt.expr, res.Fault)
			continue
		}
		if res.Ret.Int != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, res.Ret.Int, tt.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right operand of && must not evaluate when the left is false;
	// here evaluation would fault via division by zero.
	src := `
func boom() int { return 1 / 0; }
func main() int {
  if (0 && boom()) { return 1; }
  if (1 || boom()) { return 42; }
  return 0;
}`
	res := run(t, src, nil)
	if res.Fault != FaultNone {
		t.Fatalf("short-circuit evaluated both sides: fault %v", res.Fault)
	}
	if res.Ret.Int != 42 {
		t.Errorf("ret = %d, want 42", res.Ret.Int)
	}
}

func TestStrings(t *testing.T) {
	src := `
func main() int {
  string a = "hello";
  string b = a + " " + "world";
  if (b != "hello world") { return 1; }
  if (streq(b, "hello world") == 0) { return 2; }
  if (len(b) != 11) { return 3; }
  if (char(b, 0) != 'h') { return 4; }
  if (substr(b, 0, 5) != "hello") { return 5; }
  if (substr(b, 6, 999) != "world") { return 6; }
  if (concat("a", "b") != "ab") { return 7; }
  if (atoi("42abc") != 42) { return 8; }
  if (atoi("-7") != -7) { return 9; }
  if (atoi("xyz") != 0) { return 10; }
  return 0;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 0 {
		t.Errorf("string test case %d failed", res.Ret.Int)
	}
}

func TestLoops(t *testing.T) {
	src := `
func main() int {
  int s = 0;
  for (int i = 1; i <= 10; i = i + 1) { s = s + i; }
  int j = 0;
  while (j < 5) { j = j + 1; if (j == 3) { continue; } s = s + 1; }
  for (;;) { s = s + 100; break; }
  return s;
}`
	res := run(t, src, nil)
	want := int64(55 + 4 + 100)
	if res.Ret.Int != want {
		t.Errorf("ret = %d, want %d", res.Ret.Int, want)
	}
}

func TestGlobalsAndCalls(t *testing.T) {
	src := `
global int counter = 10;
global string tag = "t";
func bump(int by) int {
  counter = counter + by;
  return counter;
}
func main() int {
  bump(5);
  bump(7);
  tag = tag + "!";
  if (tag != "t!") { return -1; }
  return counter;
}`
	res := run(t, src, nil)
	if res.Ret.Int != 22 {
		t.Errorf("counter = %d, want 22", res.Ret.Int)
	}
}

func TestRecursion(t *testing.T) {
	src := `
func fib(int n) int {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main() int { return fib(15); }`
	res := run(t, src, nil)
	if res.Ret.Int != 610 {
		t.Errorf("fib(15) = %d, want 610", res.Ret.Int)
	}
}

func TestBuffers(t *testing.T) {
	src := `
func fill(buf b, string s) void {
  int i = 0;
  while (i < len(s)) {
    bufwrite(b, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  buf b[8];
  fill(b, "abc");
  if (bufcap(b) != 8) { return 1; }
  if (bufread(b, 1) != 'b') { return 2; }
  if (bufstr(b, 3) != "abc") { return 3; }
  return 0;
}`
	res := run(t, src, nil)
	if res.Fault != FaultNone {
		t.Fatalf("fault: %v in %s", res.Fault, res.FaultFunc)
	}
	if res.Ret.Int != 0 {
		t.Errorf("buffer test case %d failed", res.Ret.Int)
	}
}

func TestBufferOverflowFault(t *testing.T) {
	src := `
func vuln(string s) void {
  buf b[4];
  int i = 0;
  while (i < len(s)) {
    bufwrite(b, i, char(s, i));
    i = i + 1;
  }
  return;
}
func main() int {
  vuln(input_string("payload"));
  return 0;
}`
	// Short payload: no fault.
	res := run(t, src, &Input{Strs: map[string]string{"payload": "abc"}})
	if res.Fault != FaultNone {
		t.Fatalf("short payload faulted: %v", res.Fault)
	}
	// Long payload: overflow in vuln.
	res = run(t, src, &Input{Strs: map[string]string{"payload": "abcdefgh"}})
	if res.Fault != FaultBufferOverflow {
		t.Fatalf("fault = %v, want buffer-overflow", res.Fault)
	}
	if res.FaultFunc != "vuln" {
		t.Errorf("fault func = %q, want vuln", res.FaultFunc)
	}
}

func TestFaultKinds(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want FaultKind
	}{
		{"assert", `func main() int { assert(1 == 2); return 0; }`, FaultAssert},
		{"abort", `func main() int { abort(); return 0; }`, FaultAbort},
		{"divzero", `func main() int { int z = 0; return 1 / z; }`, FaultDivZero},
		{"modzero", `func main() int { int z = 0; return 1 % z; }`, FaultDivZero},
		{"strindex", `func main() int { return char("ab", 5); }`, FaultStringIndex},
		{"strindexneg", `func main() int { return char("ab", -1); }`, FaultStringIndex},
		{"oobread", `func main() int { buf b[2]; return bufread(b, 2); }`, FaultBufferOOBRead},
		{"oobwriteneg", `func main() int { buf b[2]; bufwrite(b, -1, 0); return 0; }`, FaultBufferOverflow},
	}
	for _, tt := range tests {
		res := run(t, tt.src, nil)
		if res.Fault != tt.want {
			t.Errorf("%s: fault = %v, want %v", tt.name, res.Fault, tt.want)
		}
	}
}

func TestAssertPasses(t *testing.T) {
	res := run(t, `func main() int { assert(2 > 1); return 5; }`, nil)
	if res.Fault != FaultNone || res.Ret.Int != 5 {
		t.Errorf("res = %+v", res)
	}
}

func TestInputChannels(t *testing.T) {
	src := `
func main() int {
  int m = input_int("m");
  string s = input_string("s");
  string e = env("HOME");
  string a0 = arg(0);
  if (nargs() != 2) { return 1; }
  if (s != "sv") { return 2; }
  if (e != "/home/u") { return 3; }
  if (a0 != "-f") { return 4; }
  if (arg(9) != "") { return 5; }
  if (input_int("missing") != 0) { return 6; }
  if (input_string("missing") != "") { return 7; }
  if (env("missing") != "") { return 8; }
  return m;
}`
	in := &Input{
		Ints: map[string]int64{"m": 77},
		Strs: map[string]string{"s": "sv"},
		Env:  map[string]string{"HOME": "/home/u"},
		Args: []string{"-f", "name"},
	}
	res := run(t, src, in)
	if res.Ret.Int != 77 {
		t.Errorf("ret = %d, want 77 (failing case if 1..8)", res.Ret.Int)
	}
}

func TestPrintOutput(t *testing.T) {
	src := `func main() int { print("hi"); print(42); print("x" + "y"); return 0; }`
	res := run(t, src, nil)
	want := []string{"hi", "42", "xy"}
	if len(res.Output) != len(want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %q, want %q", i, res.Output[i], want[i])
		}
	}
}

func TestStepLimit(t *testing.T) {
	prog := bytecode.MustCompile("inf", `func main() int { while (1) { } return 0; }`)
	_, err := Run(prog, nil, Config{MaxSteps: 1000})
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestStackDepthLimit(t *testing.T) {
	prog := bytecode.MustCompile("rec", `
func r(int n) int { return r(n + 1); }
func main() int { return r(0); }`)
	_, err := Run(prog, nil, Config{MaxDepth: 32})
	if !errors.Is(err, ErrStackDepth) {
		t.Errorf("err = %v, want ErrStackDepth", err)
	}
}

func TestHookEvents(t *testing.T) {
	src := `
global int g = 3;
func inner(int a, string s) int { g = g + a; return a * 2; }
func main() int { return inner(5, "xy"); }`
	prog := bytecode.MustCompile("hook", src)
	var events []HookEvent
	_, err := Run(prog, nil, Config{Hook: func(ev HookEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	// main:enter, inner:enter, inner:leave, main:leave.
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4: %+v", len(events), events)
	}
	if events[0].Fn.Name != "main" || events[0].Kind != trace.EventEnter {
		t.Errorf("event 0: %s %v", events[0].Fn.Name, events[0].Kind)
	}
	e := events[1]
	if e.Fn.Name != "inner" || e.Kind != trace.EventEnter {
		t.Fatalf("event 1: %s %v", e.Fn.Name, e.Kind)
	}
	if len(e.Params) != 2 || e.Params[0].Int != 5 || e.Params[1].Str != "xy" {
		t.Errorf("inner params: %+v", e.Params)
	}
	l := events[2]
	if l.Kind != trace.EventLeave || l.Ret == nil || l.Ret.Int != 10 {
		t.Errorf("inner leave: %+v", l)
	}
	// Global snapshot at inner leave reflects the update.
	if l.Globals[0].Int != 8 {
		t.Errorf("global at inner leave = %d, want 8", l.Globals[0].Int)
	}
}

func TestHookNotFiredForInit(t *testing.T) {
	src := `
global int g = 42;
func main() int { return g; }`
	prog := bytecode.MustCompile("init", src)
	var names []string
	res, err := Run(prog, nil, Config{Hook: func(ev HookEvent) { names = append(names, ev.Fn.Name) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.Int != 42 {
		t.Errorf("global init value = %d, want 42", res.Ret.Int)
	}
	for _, n := range names {
		if n == bytecode.InitFuncName {
			t.Errorf("hook fired for %s", bytecode.InitFuncName)
		}
	}
}

// TestInterpDeterminism: same program + same input => identical result.
func TestInterpDeterminism(t *testing.T) {
	src := `
func f(int x) int {
  buf b[16];
  int i = 0;
  while (i < x) { bufwrite(b, i % 16, i); i = i + 1; }
  return bufread(b, x % 16);
}
func main() int { return f(input_int("x")); }`
	prog := bytecode.MustCompile("det", src)
	f := func(x int16) bool {
		in := &Input{Ints: map[string]int64{"x": int64(x)}}
		r1, err1 := Run(prog, in, Config{})
		r2, err2 := Run(prog, in, Config{})
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return r1.Fault == r2.Fault && r1.Ret == r2.Ret && r1.Steps == r2.Steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestOverflowThresholdProperty: the overflow fault occurs exactly when the
// payload length exceeds the buffer capacity.
func TestOverflowThresholdProperty(t *testing.T) {
	src := `
func copy_in(string s) void {
  buf b[32];
  int i = 0;
  while (i < len(s)) { bufwrite(b, i, char(s, i)); i = i + 1; }
  return;
}
func main() int { copy_in(input_string("p")); return 0; }`
	prog := bytecode.MustCompile("thresh", src)
	f := func(n uint8) bool {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = 'a'
		}
		in := &Input{Strs: map[string]string{"p": string(payload)}}
		res, err := Run(prog, in, Config{})
		if err != nil {
			return false
		}
		wantFault := int(n) > 32
		return (res.Fault == FaultBufferOverflow) == wantFault
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
