package dispatch

import (
	"bytes"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/symexec/snapshot"
)

// startWorker serves run on a unix socket in a temp dir, returning its
// address and the listener (close it to stop the worker).
func startWorker(t *testing.T, run Runner) (string, net.Listener) {
	t.Helper()
	addr := filepath.Join(t.TempDir(), "worker.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go Serve(l, run)
	t.Cleanup(func() { l.Close() })
	return addr, l
}

func TestSplitAddr(t *testing.T) {
	cases := []struct{ in, net, addr string }{
		{"unix:/tmp/w.sock", "unix", "/tmp/w.sock"},
		{"/tmp/w.sock", "unix", "/tmp/w.sock"},
		{"tcp:127.0.0.1:9000", "tcp", "127.0.0.1:9000"},
		{"127.0.0.1:9000", "tcp", "127.0.0.1:9000"},
		{"localhost:7", "tcp", "localhost:7"},
	}
	for _, c := range cases {
		n, a := SplitAddr(c.in)
		if n != c.net || a != c.addr {
			t.Errorf("SplitAddr(%q) = (%q, %q), want (%q, %q)", c.in, n, a, c.net, c.addr)
		}
	}
}

func TestUnitRoundTrip(t *testing.T) {
	addr, _ := startWorker(t, func(typ byte, payload []byte) ([]byte, error) {
		return append([]byte{typ}, payload...), nil
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		payload := []byte(fmt.Sprintf("unit-%d", i))
		out, err := c.Do(snapshot.FrameAttemptUnit, payload, time.Minute)
		if err != nil {
			t.Fatalf("Do[%d]: %v", i, err)
		}
		want := append([]byte{snapshot.FrameAttemptUnit}, payload...)
		if !bytes.Equal(out, want) {
			t.Fatalf("Do[%d] = %q, want %q", i, out, want)
		}
	}
}

func TestUnitErrorKeepsClientAlive(t *testing.T) {
	addr, _ := startWorker(t, func(typ byte, payload []byte) ([]byte, error) {
		if len(payload) == 0 {
			return nil, fmt.Errorf("empty unit")
		}
		return payload, nil
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(snapshot.FrameAttemptUnit, nil, time.Minute); err == nil || !strings.Contains(err.Error(), "empty unit") {
		t.Fatalf("unit error = %v, want empty-unit failure", err)
	}
	if c.Dead() != nil {
		t.Fatalf("client died on a unit error: %v", c.Dead())
	}
	if out, err := c.Do(snapshot.FrameAttemptUnit, []byte("ok"), time.Minute); err != nil || string(out) != "ok" {
		t.Fatalf("follow-up unit = %q, %v", out, err)
	}
}

// TestWorkerCrashMidUnit simulates a worker dying after accepting a unit
// (connection drops with no reply): the client must surface an error
// promptly and stay dead.
func TestWorkerCrashMidUnit(t *testing.T) {
	addr := filepath.Join(t.TempDir(), "crash.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		snapshot.ReadFrame(conn) // hello
		snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte(Magic))
		snapshot.ReadFrame(conn) // accept the unit...
		conn.Close()             // ...and "crash"
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(snapshot.FrameAttemptUnit, []byte("x"), time.Minute); err == nil {
		t.Fatal("Do succeeded against a crashed worker")
	}
	if c.Dead() == nil {
		t.Fatal("client still healthy after worker crash")
	}
}

func TestUnitDeadlineKillsClient(t *testing.T) {
	addr, _ := startWorker(t, func(typ byte, payload []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return payload, nil
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Do(snapshot.FrameAttemptUnit, []byte("x"), 150*time.Millisecond)
	if err == nil {
		t.Fatal("Do met a 150ms deadline against a 5s worker")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if c.Dead() == nil {
		t.Fatal("client still healthy after a missed deadline")
	}
	if _, err := c.Do(snapshot.FrameAttemptUnit, []byte("y"), time.Minute); err == nil {
		t.Fatal("dead client accepted another unit")
	}
}

func TestHandshakeMismatchRejected(t *testing.T) {
	addr := filepath.Join(t.TempDir(), "raw.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A "worker" speaking a different protocol version.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		snapshot.ReadFrame(conn)
		snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte("statsym-dispatch/999"))
	}()
	if _, err := Dial(addr); err == nil || !strings.Contains(err.Error(), "statsym-dispatch/999") {
		t.Fatalf("Dial = %v, want version mismatch", err)
	}
}

func TestServerRejectsBadMagic(t *testing.T) {
	addr, _ := startWorker(t, func(typ byte, payload []byte) ([]byte, error) { return payload, nil })
	network, address := SplitAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := snapshot.WriteFrame(conn, snapshot.FrameHello, []byte("not-the-magic")); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := snapshot.ReadFrame(conn)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if typ != snapshot.FrameError || !strings.Contains(string(payload), "handshake mismatch") {
		t.Fatalf("server reply = (%#x, %q), want handshake-mismatch error", typ, payload)
	}
}

func TestTornStreamKillsClient(t *testing.T) {
	addr := filepath.Join(t.TempDir(), "torn.sock")
	l, err := Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		snapshot.ReadFrame(conn) // hello
		snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte(Magic))
		snapshot.ReadFrame(conn) // the unit
		// Write half a result frame, then slam the connection shut.
		var buf bytes.Buffer
		snapshot.WriteFrame(&buf, snapshot.FrameResult, bytes.Repeat([]byte{0xAA}, 64))
		conn.Write(buf.Bytes()[:buf.Len()/2])
		conn.Close()
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(snapshot.FrameAttemptUnit, []byte("x"), time.Minute); err == nil {
		t.Fatal("torn result frame accepted")
	}
	if c.Dead() == nil {
		t.Fatal("client survived a torn stream")
	}
}
