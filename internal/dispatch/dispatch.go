// Package dispatch is the socket transport of the distributed frontier:
// a coordinator ships work units (serialized candidate attempts or frontier
// shards, see internal/symexec/snapshot) to worker processes and reads back
// results. The protocol is deliberately small — CRC-framed messages over a
// unix-domain or TCP stream, a magic/version handshake, one outstanding
// unit per connection — because all sequencing intelligence (work-stealing,
// re-dispatch, merge order) lives in the coordinator, not the wire.
//
// Failure model: any transport error — torn frame, checksum mismatch,
// deadline expiry, connection reset — marks the client dead; the
// coordinator re-runs the unit locally. Workers therefore only ever cost
// speed, never detections.
package dispatch

import (
	"fmt"
	"net"
	"strings"
	"time"
)

// Magic identifies the protocol and its version. The Hello payload must
// match exactly; mismatches (old binary, wrong port) fail the handshake
// with a descriptive error instead of undefined framing behavior.
const Magic = "statsym-dispatch/1"

// DefaultUnitDeadline bounds one unit's round trip when the caller does
// not choose a deadline. Generous: a unit is a whole candidate attempt,
// whose own solver/step budgets normally finish far sooner.
const DefaultUnitDeadline = 10 * time.Minute

// SplitAddr normalizes a worker address into (network, address) for
// net.Dial/net.Listen: "unix:<path>" or any address containing a path
// separator is a unix-domain socket, everything else is TCP.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	if strings.ContainsAny(addr, "/\\") {
		return "unix", addr
	}
	return "tcp", addr
}

// Listen opens a listener on addr (see SplitAddr for the syntax).
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	l, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("dispatch: listen %s %s: %w", network, address, err)
	}
	return l, nil
}
