package dispatch

import (
	"fmt"
	"net"
	"time"

	"repro/internal/symexec/snapshot"
)

// Client is the coordinator's handle on one worker process: a single
// connection carrying one unit at a time. It is not safe for concurrent
// use — the dispatch pool owns one Client per worker slot.
//
// A Client never recovers from a transport error: the first torn frame,
// checksum failure, or missed deadline marks it dead for good, and every
// later Do fails fast. Reconnecting could double-execute a unit whose
// first delivery may still be running; the pool's local re-dispatch is the
// sanctioned recovery path.
type Client struct {
	addr string
	conn net.Conn
	dead error
}

// Dial connects to a worker at addr (see SplitAddr) and performs the
// magic/version handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a connection + handshake deadline.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	network, address := SplitAddr(addr)
	conn, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, fmt.Errorf("dispatch: dial %s: %w", addr, err)
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := snapshot.WriteFrame(conn, snapshot.FrameHello, []byte(Magic)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dispatch: handshake write to %s: %w", addr, err)
	}
	typ, payload, err := snapshot.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dispatch: handshake read from %s: %w", addr, err)
	}
	if typ == snapshot.FrameError {
		conn.Close()
		return nil, fmt.Errorf("dispatch: worker %s rejected handshake: %s", addr, payload)
	}
	if typ != snapshot.FrameHelloAck || string(payload) != Magic {
		conn.Close()
		return nil, fmt.Errorf("dispatch: worker %s spoke %q, want %q", addr, payload, Magic)
	}
	conn.SetDeadline(time.Time{})
	return &Client{addr: addr, conn: conn}, nil
}

// Addr returns the worker address this client dialed.
func (c *Client) Addr() string { return c.addr }

// Dead returns the transport error that killed this client, or nil while
// it is healthy.
func (c *Client) Dead() error { return c.dead }

// Do ships one unit and waits for its result, bounding the whole round
// trip by deadline (DefaultUnitDeadline when zero). A FrameError from the
// worker is returned as an error but leaves the client healthy — the unit
// failed, not the transport. Any transport failure kills the client.
func (c *Client) Do(typ byte, payload []byte, deadline time.Duration) ([]byte, error) {
	if c.dead != nil {
		return nil, fmt.Errorf("dispatch: worker %s is dead: %w", c.addr, c.dead)
	}
	if deadline <= 0 {
		deadline = DefaultUnitDeadline
	}
	c.conn.SetDeadline(time.Now().Add(deadline))
	if err := snapshot.WriteFrame(c.conn, typ, payload); err != nil {
		return nil, c.kill(fmt.Errorf("dispatch: send to %s: %w", c.addr, err))
	}
	rtyp, rpayload, err := snapshot.ReadFrame(c.conn)
	if err != nil {
		return nil, c.kill(fmt.Errorf("dispatch: receive from %s: %w", c.addr, err))
	}
	switch rtyp {
	case snapshot.FrameResult:
		return rpayload, nil
	case snapshot.FrameError:
		return nil, fmt.Errorf("dispatch: worker %s: unit failed: %s", c.addr, rpayload)
	default:
		return nil, c.kill(fmt.Errorf("dispatch: worker %s sent unexpected frame %#x", c.addr, rtyp))
	}
}

// kill marks the client dead and closes its connection.
func (c *Client) kill(err error) error {
	c.dead = err
	c.conn.Close()
	return err
}

// Close shuts the connection down cleanly (the worker sees EOF at a frame
// boundary and ends the session without logging an error).
func (c *Client) Close() error {
	if c.dead != nil {
		return nil
	}
	c.dead = fmt.Errorf("dispatch: client closed")
	return c.conn.Close()
}
