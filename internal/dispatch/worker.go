package dispatch

import (
	"fmt"
	"io"
	"net"

	"repro/internal/symexec/snapshot"
)

// Runner executes one work unit on the worker side: typ is the
// application frame type (FrameAttemptUnit, FrameStateUnit), payload its
// serialized body, and the returned bytes become the FrameResult payload.
// An error is reported to the coordinator as a FrameError; the worker
// connection stays up (a unit that fails to decode must not take the
// worker down with it).
type Runner func(typ byte, payload []byte) ([]byte, error)

// Serve accepts coordinator connections on l and processes their units
// with run until the listener closes. Each connection is served on its own
// goroutine; a malformed or torn stream closes that connection only.
func Serve(l net.Listener, run Runner) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return err
		}
		go func() {
			defer conn.Close()
			serveConn(conn, run)
		}()
	}
}

// serveConn speaks the protocol on one connection: handshake, then a
// unit/result loop until clean EOF or the first transport error.
func serveConn(conn net.Conn, run Runner) error {
	typ, payload, err := snapshot.ReadFrame(conn)
	if err != nil {
		return err
	}
	if typ != snapshot.FrameHello || string(payload) != Magic {
		snapshot.WriteFrame(conn, snapshot.FrameError,
			[]byte(fmt.Sprintf("handshake mismatch: want %q", Magic)))
		return fmt.Errorf("dispatch: handshake mismatch (frame %#x)", typ)
	}
	if err := snapshot.WriteFrame(conn, snapshot.FrameHelloAck, []byte(Magic)); err != nil {
		return err
	}
	for {
		typ, payload, err := snapshot.ReadFrame(conn)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator closed cleanly between units
			}
			return err
		}
		if typ < 0x10 {
			return fmt.Errorf("dispatch: unexpected transport frame %#x mid-stream", typ)
		}
		out, rerr := run(typ, payload)
		if rerr != nil {
			if err := snapshot.WriteFrame(conn, snapshot.FrameError, []byte(rerr.Error())); err != nil {
				return err
			}
			continue
		}
		if err := snapshot.WriteFrame(conn, snapshot.FrameResult, out); err != nil {
			return err
		}
	}
}
