package stats

import (
	"context"
	"io"
	"math"
	"sort"

	"repro/internal/trace"
)

// StreamOpts tunes streaming analysis. The zero value uses the defaults.
type StreamOpts struct {
	// MaxDistinct caps each per-(location, variable, class) counting
	// sketch: past this many distinct values the accumulator falls back to
	// an exact raw-sample slice (the sketch's map overhead only pays for
	// itself while values repeat). Both modes are exact, so the analysis
	// output is identical either way; the cap only trades memory layout.
	MaxDistinct int
}

// DefaultMaxDistinct is the sketch cap when StreamOpts.MaxDistinct is zero.
const DefaultMaxDistinct = 1 << 14

func (o StreamOpts) maxDistinct() int {
	if o.MaxDistinct <= 0 {
		return DefaultMaxDistinct
	}
	return o.MaxDistinct
}

// valueCounts accumulates one class's numeric samples for one (location,
// variable) pair: a value→count map while the distinct-value set stays
// under the cap, an exact raw slice after. Either way it represents the
// exact sample multiset — predicate construction depends on nothing else.
type valueCounts struct {
	counts map[int64]int
	raw    []int64
	n      int
}

// add records one sample, returning true on the add that spills the sketch
// to raw mode.
func (v *valueCounts) add(x int64, maxDistinct int) bool {
	if v.raw != nil {
		v.raw = append(v.raw, x)
		v.n++
		return false
	}
	if v.counts == nil {
		v.counts = make(map[int64]int)
	}
	v.counts[x]++
	v.n++
	if len(v.counts) <= maxDistinct {
		return false
	}
	raw := make([]int64, 0, v.n)
	for val, c := range v.counts {
		for i := 0; i < c; i++ {
			raw = append(raw, val)
		}
	}
	v.raw, v.counts = raw, nil
	return true
}

func (v *valueCounts) total() int { return v.n }

// distinct returns the sorted distinct values and their multiplicities.
func (v *valueCounts) distinct() (vals []int64, mult []int) {
	if v.raw != nil {
		sorted := append([]int64(nil), v.raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i, x := range sorted {
			if i == 0 || x != vals[len(vals)-1] {
				vals = append(vals, x)
				mult = append(mult, 1)
			} else {
				mult[len(mult)-1]++
			}
		}
		return vals, mult
	}
	vals = make([]int64, 0, len(v.counts))
	for x := range v.counts {
		vals = append(vals, x)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	mult = make([]int, len(vals))
	for i, x := range vals {
		mult[i] = v.counts[x]
	}
	return vals, mult
}

// streamSample is the streaming counterpart of sampleSet.
type streamSample struct {
	loc      trace.Location
	name     string
	class    trace.VarClass
	isString bool
	correct  valueCounts
	faulty   valueCounts
}

// StreamAnalyzer consumes runs one at a time and produces the same
// Analysis as the in-memory Analyze — byte-identical predicates in the
// identical ranking — while holding only per-(location, variable) value
// sketches, never the runs themselves.
type StreamAnalyzer struct {
	opts      StreamOpts
	samples   map[string]*streamSample
	order     []string
	runs      int
	locs      map[trace.Location]struct{}
	vars      map[string]struct{}
	fallbacks int
}

// NewStreamAnalyzer returns an empty analyzer.
func NewStreamAnalyzer(opts StreamOpts) *StreamAnalyzer {
	return &StreamAnalyzer{
		opts:    opts,
		samples: make(map[string]*streamSample),
		locs:    make(map[trace.Location]struct{}),
		vars:    make(map[string]struct{}),
	}
}

// Add folds one run into the accumulators. The run is not retained.
func (a *StreamAnalyzer) Add(run *trace.Run) {
	a.runs++
	maxDistinct := a.opts.maxDistinct()
	for _, rec := range run.Records {
		a.locs[rec.Loc] = struct{}{}
		for _, ob := range rec.Obs {
			a.vars[ob.Var] = struct{}{}
			key := rec.Loc.String() + "/" + ob.Var
			ss, ok := a.samples[key]
			if !ok {
				ss = &streamSample{
					loc:      rec.Loc,
					name:     ob.Var,
					class:    ob.Class,
					isString: ob.Kind == trace.ValueString,
				}
				a.samples[key] = ss
				a.order = append(a.order, key)
			}
			var spilled bool
			if run.Faulty {
				spilled = ss.faulty.add(ob.Numeric(), maxDistinct)
			} else {
				spilled = ss.correct.add(ob.Numeric(), maxDistinct)
			}
			if spilled {
				a.fallbacks++
			}
		}
	}
}

// Fallbacks reports how many sketches spilled to exact raw mode.
func (a *StreamAnalyzer) Fallbacks() int { return a.fallbacks }

// Finish builds and ranks the predicates. The analyzer may not be reused.
func (a *StreamAnalyzer) Finish() *Analysis {
	out := &Analysis{Runs: a.runs, Locations: len(a.locs), Variables: len(a.vars)}
	built := buildParallel(len(a.order), func(i int) *Predicate {
		return buildPredicateDist(a.samples[a.order[i]])
	})
	for _, p := range built {
		if p != nil {
			out.Predicates = append(out.Predicates, p)
		}
	}
	rankPredicates(out.Predicates)
	return out
}

// AnalyzeStream runs predicate construction over a run iterator in one
// bounded-memory pass: peak memory is the iterator's block buffer plus the
// value sketches, independent of corpus size. Output is byte-identical to
// Analyze on the materialized corpus (pinned by the differential tests).
func AnalyzeStream(ctx context.Context, it trace.RunIterator, opts StreamOpts) (*Analysis, error) {
	a := NewStreamAnalyzer(opts)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		a.Add(run)
	}
	return a.Finish(), nil
}

// buildPredicateDist is buildPredicate on the distinct-value
// representation. Every arithmetic step mirrors the slice version exactly
// — thresholds from adjacent distinct values, counts via the same
// float64-compare search, the same strict-improvement scan in the same
// ascending order — so the resulting predicate is bit-equal, not merely
// equivalent.
func buildPredicateDist(ss *streamSample) *Predicate {
	nc, nf := ss.correct.total(), ss.faulty.total()
	if nc == 0 && nf == 0 {
		return nil
	}
	base := &Predicate{
		Loc:      ss.loc,
		Var:      ss.name,
		Class:    ss.class,
		IsString: ss.isString,
		CountC:   nc,
		CountF:   nf,
	}
	if nf == 0 {
		base.Op = PredNever
		base.Score = 1.0
		base.Err = 0
		return base
	}
	fVals, fMult := ss.faulty.distinct()
	if nc == 0 {
		base.Op = PredGe
		base.Threshold = float64(fVals[0]) - 0.5
		base.Score = 1.0
		base.Err = 0
		return base
	}
	cVals, cMult := ss.correct.distinct()

	// Suffix sums: cSuf[i] = #correct samples with value >= cVals[i].
	cSuf := suffixSums(cMult)
	fSuf := suffixSums(fMult)

	// The distinct values of the merged multiset are the sorted union.
	union := mergeDistinct(cVals, fVals)
	if len(union) == 1 {
		base.Op = PredGe
		base.Threshold = float64(union[0]) - 0.5
		base.Score = 0
		base.Err = nc
		return base
	}

	countGE := func(vals []int64, suf []int, t float64) int {
		idx := sort.Search(len(vals), func(i int) bool { return float64(vals[i]) >= t })
		if idx == len(vals) {
			return 0
		}
		return suf[idx]
	}

	bestErr := math.MaxInt
	var bestOp PredOp
	var bestT float64
	for i := 1; i < len(union); i++ {
		t := float64(union[i-1]) + float64(union[i]-union[i-1])/2
		cGE := countGE(cVals, cSuf, t)
		fGE := countGE(fVals, fSuf, t)
		if e := cGE + (nf - fGE); e < bestErr {
			bestErr, bestOp, bestT = e, PredGe, t
		}
		if e := (nc - cGE) + fGE; e < bestErr {
			bestErr, bestOp, bestT = e, PredLe, t
		}
	}
	base.Op = bestOp
	base.Threshold = bestT
	base.Err = bestErr

	cGE := countGE(cVals, cSuf, bestT)
	fGE := countGE(fVals, fSuf, bestT)
	var pc, pf float64
	if bestOp == PredGe {
		pc = float64(cGE) / float64(nc)
		pf = float64(fGE) / float64(nf)
	} else {
		pc = float64(nc-cGE) / float64(nc)
		pf = float64(nf-fGE) / float64(nf)
	}
	base.Score = math.Abs(pc - pf)
	return base
}

func suffixSums(mult []int) []int {
	suf := make([]int, len(mult))
	total := 0
	for i := len(mult) - 1; i >= 0; i-- {
		total += mult[i]
		suf[i] = total
	}
	return suf
}

// mergeDistinct merges two sorted distinct slices into their sorted union.
func mergeDistinct(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default: // equal
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
