package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// mkCorpus builds a corpus with one location "f():enter" and one int
// variable "v", given per-run values.
func mkCorpus(correct, faulty []int64) *trace.Corpus {
	loc := trace.Location{Func: "f", Kind: trace.EventEnter}
	c := &trace.Corpus{Program: "t"}
	id := 0
	add := func(v int64, isFaulty bool) {
		c.Runs = append(c.Runs, trace.Run{
			ID:     id,
			Faulty: isFaulty,
			Records: []trace.Record{{
				Loc: loc,
				Obs: []trace.Observation{{Var: "v", Class: trace.ClassParam, Kind: trace.ValueInt, Int: v}},
			}},
		})
		id++
	}
	for _, v := range correct {
		add(v, false)
	}
	for _, v := range faulty {
		add(v, true)
	}
	return c
}

func TestPerfectSeparationGe(t *testing.T) {
	// Correct values below 10, faulty values above: a ≥ threshold with
	// threshold between 9 and 100 and score 1.
	a := Analyze(mkCorpus([]int64{1, 5, 9}, []int64{100, 150}))
	if len(a.Predicates) != 1 {
		t.Fatalf("got %d predicates", len(a.Predicates))
	}
	p := a.Predicates[0]
	if p.Op != PredGe {
		t.Fatalf("op = %v, want >=", p.Op)
	}
	if p.Threshold <= 9 || p.Threshold >= 100 {
		t.Errorf("threshold = %v, want in (9,100)", p.Threshold)
	}
	if p.Score != 1.0 {
		t.Errorf("score = %v, want 1.0", p.Score)
	}
	if p.Err != 0 {
		t.Errorf("err = %d, want 0", p.Err)
	}
}

func TestPerfectSeparationLe(t *testing.T) {
	// Faulty values below correct ones: direction flips to ≤.
	a := Analyze(mkCorpus([]int64{100, 150}, []int64{1, 5}))
	p := a.Predicates[0]
	if p.Op != PredLe {
		t.Fatalf("op = %v, want <=", p.Op)
	}
	if p.Score != 1.0 {
		t.Errorf("score = %v", p.Score)
	}
}

func TestOverlappingDistributions(t *testing.T) {
	// C = {1..10}, F = {6..15}: best threshold ~5.5 or 10.5 with partial
	// score.
	var c, f []int64
	for i := int64(1); i <= 10; i++ {
		c = append(c, i)
	}
	for i := int64(6); i <= 15; i++ {
		f = append(f, i)
	}
	a := Analyze(mkCorpus(c, f))
	p := a.Predicates[0]
	if p.Score <= 0 || p.Score >= 1 {
		t.Errorf("score = %v, want strictly between 0 and 1", p.Score)
	}
	// E should be the overlap size (5 values on the wrong side).
	if p.Err != 5 {
		t.Errorf("E = %d, want 5", p.Err)
	}
}

func TestNoSeparation(t *testing.T) {
	a := Analyze(mkCorpus([]int64{5, 5, 5}, []int64{5, 5}))
	p := a.Predicates[0]
	if p.Score != 0 {
		t.Errorf("identical distributions: score = %v, want 0", p.Score)
	}
}

func TestNeverReachedInFaulty(t *testing.T) {
	// A location that appears only in correct runs yields the paper's
	// "< -infinity" predicate with score 1.
	locA := trace.Location{Func: "f", Kind: trace.EventEnter}
	locB := trace.Location{Func: "f", Kind: trace.EventLeave}
	c := &trace.Corpus{
		Runs: []trace.Run{
			{ID: 0, Faulty: false, Records: []trace.Record{
				{Loc: locA, Obs: []trace.Observation{{Var: "v", Class: trace.ClassParam, Kind: trace.ValueInt, Int: 1}}},
				{Loc: locB, Obs: []trace.Observation{{Var: "g", Class: trace.ClassGlobal, Kind: trace.ValueInt, Int: 2}}},
			}},
			{ID: 1, Faulty: true, Records: []trace.Record{
				{Loc: locA, Obs: []trace.Observation{{Var: "v", Class: trace.ClassParam, Kind: trace.ValueInt, Int: 999}}},
			}},
		},
	}
	a := Analyze(c)
	var never *Predicate
	for _, p := range a.Predicates {
		if p.Op == PredNever {
			never = p
		}
	}
	if never == nil {
		t.Fatal("no PredNever predicate for correct-only location")
	}
	if never.Var != "g" || never.Score != 1.0 {
		t.Errorf("never = %+v", never)
	}
	if got := never.String(); got != "g GLOBAL < -infinity" {
		t.Errorf("String = %q", got)
	}
}

func TestStringLengthTransform(t *testing.T) {
	loc := trace.Location{Func: "f", Kind: trace.EventEnter}
	mk := func(s string, faulty bool, id int) trace.Run {
		return trace.Run{ID: id, Faulty: faulty, Records: []trace.Record{{
			Loc: loc,
			Obs: []trace.Observation{{Var: "s", Class: trace.ClassParam, Kind: trace.ValueString, Str: s}},
		}}}
	}
	c := &trace.Corpus{Runs: []trace.Run{
		mk("ab", false, 0), mk("abc", false, 1),
		mk("aaaaaaaaaa", true, 2), mk("aaaaaaaaaaaa", true, 3),
	}}
	a := Analyze(c)
	p := a.Predicates[0]
	if !p.IsString {
		t.Fatal("predicate not marked as string")
	}
	if p.Op != PredGe || p.Threshold <= 3 || p.Threshold >= 10 {
		t.Errorf("predicate = %s", p.String())
	}
	if got := p.String(); got != "len(s) FUNCPARAM >= 6.5" {
		t.Errorf("String = %q", got)
	}
}

func TestIntThreshold(t *testing.T) {
	p := &Predicate{Op: PredGe, Threshold: 536.5}
	if p.IntThreshold() != 537 {
		t.Errorf("IntThreshold = %d, want 537", p.IntThreshold())
	}
	p = &Predicate{Op: PredLe, Threshold: 9.5}
	if p.IntThreshold() != 9 {
		t.Errorf("IntThreshold = %d, want 9", p.IntThreshold())
	}
}

func TestHoldsFor(t *testing.T) {
	ge := &Predicate{Op: PredGe, Threshold: 10.5}
	if ge.HoldsFor(10) || !ge.HoldsFor(11) {
		t.Error("PredGe.HoldsFor wrong")
	}
	le := &Predicate{Op: PredLe, Threshold: 10.5}
	if !le.HoldsFor(10) || le.HoldsFor(11) {
		t.Error("PredLe.HoldsFor wrong")
	}
	never := &Predicate{Op: PredNever}
	if never.HoldsFor(0) {
		t.Error("PredNever.HoldsFor should be false")
	}
}

func TestRankingDeterminism(t *testing.T) {
	c := mkCorpus([]int64{1, 2, 3}, []int64{10, 11})
	a1 := Analyze(c)
	a2 := Analyze(c)
	if len(a1.Predicates) != len(a2.Predicates) {
		t.Fatal("length differs")
	}
	for i := range a1.Predicates {
		if a1.Predicates[i].String() != a2.Predicates[i].String() {
			t.Errorf("predicate %d differs", i)
		}
	}
}

func TestCounts(t *testing.T) {
	a := Analyze(mkCorpus([]int64{1, 2}, []int64{3}))
	if a.Runs != 3 || a.Locations != 1 || a.Variables != 1 {
		t.Errorf("counts = %d/%d/%d", a.Runs, a.Locations, a.Variables)
	}
	p := a.Predicates[0]
	if p.CountC != 2 || p.CountF != 1 {
		t.Errorf("sample counts = %d/%d", p.CountC, p.CountF)
	}
}

// bruteForceE exhaustively finds the minimal quantification error over all
// interior half-integer thresholds (thresholds with sample values on both
// sides — exterior thresholds make the predicate trivially true/false and
// are excluded by construction) and both directions.
func bruteForceE(c, f []int64) int {
	all := append(append([]int64(nil), c...), f...)
	lo, hi := all[0], all[0]
	for _, v := range all {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	best := len(c) + len(f) + 1
	for _, base := range all {
		for _, t := range []float64{float64(base) - 0.5, float64(base) + 0.5} {
			if t < float64(lo) || t > float64(hi) {
				continue
			}
			// x = a >= t
			e := 0
			for _, v := range c {
				if float64(v) >= t {
					e++
				}
			}
			for _, v := range f {
				if float64(v) < t {
					e++
				}
			}
			if e < best {
				best = e
			}
			// x = a <= t
			e = 0
			for _, v := range c {
				if float64(v) <= t {
					e++
				}
			}
			for _, v := range f {
				if float64(v) > t {
					e++
				}
			}
			if e < best {
				best = e
			}
		}
	}
	return best
}

// TestOptimalThresholdProperty cross-checks the chosen threshold's E
// against brute force on random samples (Eq. 1 optimality).
func TestOptimalThresholdProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nc := 1 + rng.Intn(8)
		nf := 1 + rng.Intn(8)
		c := make([]int64, nc)
		f := make([]int64, nf)
		for i := range c {
			c[i] = int64(rng.Intn(20))
		}
		for i := range f {
			f[i] = int64(rng.Intn(20))
		}
		a := Analyze(mkCorpus(c, f))
		p := a.Predicates[0]
		want := bruteForceE(c, f)
		if p.Err > want {
			t.Fatalf("trial %d: E = %d, brute force found %d (c=%v f=%v pred=%s)",
				trial, p.Err, want, c, f, p.String())
		}
		// Score must equal |P(x|C) - P(x|F)| recomputed directly.
		pc, pf := 0.0, 0.0
		for _, v := range c {
			if p.HoldsFor(v) {
				pc++
			}
		}
		for _, v := range f {
			if p.HoldsFor(v) {
				pf++
			}
		}
		score := math.Abs(pc/float64(nc) - pf/float64(nf))
		if math.Abs(score-p.Score) > 1e-9 {
			t.Fatalf("trial %d: score = %v, recomputed %v", trial, p.Score, score)
		}
	}
}

func TestTopAndBestAt(t *testing.T) {
	loc := trace.Location{Func: "f", Kind: trace.EventEnter}
	a := Analyze(mkCorpus([]int64{1}, []int64{10}))
	if len(a.Top(5)) != 1 {
		t.Errorf("Top(5) length = %d", len(a.Top(5)))
	}
	if a.BestAt(loc) == nil {
		t.Errorf("BestAt missing")
	}
	if a.LocationScore(trace.Location{Func: "zzz", Kind: trace.EventEnter}) != 0 {
		t.Errorf("unknown location score should be 0")
	}
}
