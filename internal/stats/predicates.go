// Package stats implements the paper's statistical inference component
// (§V-A): it analyzes runtime logs, constructs threshold predicates that
// optimally separate a variable's values in correct versus faulty
// executions (Eq. 1), and ranks them by the confidence score
// s = |P(x|C) − P(x|F)| (Eq. 2). This is the Predicate Manager of the
// prototype (§VI-B).
package stats

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// PredOp is a predicate's comparison direction.
type PredOp int

// Predicate forms. PredNever ("a < -infinity") arises for variables whose
// instrumentation location is never reached in faulty runs — the paper's
// P7–P10 for polymorph (Table V) have exactly this form.
const (
	PredGe PredOp = iota + 1 // value ≥ threshold
	PredLe                   // value ≤ threshold
	PredNever
)

// Predicate is a statistical predicate over one variable at one location.
type Predicate struct {
	Loc   trace.Location
	Var   string
	Class trace.VarClass
	// IsString records whether the underlying variable is a string (the
	// numeric view is then its length, so the rendered form is
	// "len(var) ≥ t").
	IsString bool

	Op PredOp
	// Threshold is a half-integer separating the two distributions
	// (e.g. 536.5), ignored for PredNever.
	Threshold float64

	// Score is the confidence score s = |P(x|C) − P(x|F)| (Eq. 2);
	// Err is the quantification error E (Eq. 1) of the chosen threshold.
	Score float64
	Err   int

	// Sample counts.
	CountC, CountF int
}

// String renders the predicate in the paper's Table V style.
func (p *Predicate) String() string {
	name := p.Var
	if p.IsString {
		name = "len(" + name + ")"
	}
	label := fmt.Sprintf("%s %s", name, p.Class)
	switch p.Op {
	case PredGe:
		return fmt.Sprintf("%s >= %.1f", label, p.Threshold)
	case PredLe:
		return fmt.Sprintf("%s <= %.1f", label, p.Threshold)
	default:
		return label + " < -infinity"
	}
}

// HoldsFor evaluates the predicate on a numeric value.
func (p *Predicate) HoldsFor(v int64) bool {
	switch p.Op {
	case PredGe:
		return float64(v) >= p.Threshold
	case PredLe:
		return float64(v) <= p.Threshold
	default:
		return false
	}
}

// IntThreshold converts the half-integer threshold into the equivalent
// integer bound: for PredGe, value ≥ k; for PredLe, value ≤ k.
func (p *Predicate) IntThreshold() int64 {
	switch p.Op {
	case PredGe:
		return int64(math.Ceil(p.Threshold))
	case PredLe:
		return int64(math.Floor(p.Threshold))
	default:
		return 0
	}
}

// Key identifies the (location, variable) pair of the predicate.
func (p *Predicate) Key() string { return p.Loc.String() + "/" + p.Var }

// sampleSet accumulates a variable's observed values at one location.
type sampleSet struct {
	loc      trace.Location
	name     string
	class    trace.VarClass
	isString bool
	correct  []int64
	faulty   []int64
}

// Analysis is the output of predicate construction.
type Analysis struct {
	// Predicates are ranked by score (descending), deterministically
	// tie-broken.
	Predicates []*Predicate

	// Runs/Locations/Variables are the preprocessing counts n(R), n(L),
	// n(V).
	Runs, Locations, Variables int
}

// Top returns the k highest-ranked predicates.
func (a *Analysis) Top(k int) []*Predicate {
	if k > len(a.Predicates) {
		k = len(a.Predicates)
	}
	return a.Predicates[:k]
}

// BestAt returns the highest-scoring predicate at a location, or nil.
func (a *Analysis) BestAt(loc trace.Location) *Predicate {
	for _, p := range a.Predicates { // ranked, so first hit is best
		if p.Loc == loc {
			return p
		}
	}
	return nil
}

// LocationScore returns the score of the best predicate at loc (0 if none)
// — the node score used by candidate-path construction (§V-B step 1).
func (a *Analysis) LocationScore(loc trace.Location) float64 {
	if p := a.BestAt(loc); p != nil {
		return p.Score
	}
	return 0
}

// Analyze runs predicate construction and ranking over a corpus — steps
// (a)–(d) of the algorithm in Fig. 5.
func Analyze(corpus *trace.Corpus) *Analysis {
	a := &Analysis{}
	a.Runs, a.Locations, a.Variables = corpus.Counts()

	// Step (a)/(b): split runs and accumulate numeric samples per
	// (location, variable).
	samples := make(map[string]*sampleSet)
	order := make([]string, 0, 64) // deterministic iteration
	collect := func(run *trace.Run, faulty bool) {
		for _, rec := range run.Records {
			for _, ob := range rec.Obs {
				key := rec.Loc.String() + "/" + ob.Var
				ss, ok := samples[key]
				if !ok {
					ss = &sampleSet{
						loc:      rec.Loc,
						name:     ob.Var,
						class:    ob.Class,
						isString: ob.Kind == trace.ValueString,
					}
					samples[key] = ss
					order = append(order, key)
				}
				if faulty {
					ss.faulty = append(ss.faulty, ob.Numeric())
				} else {
					ss.correct = append(ss.correct, ob.Numeric())
				}
			}
		}
	}
	for i := range corpus.Runs {
		run := &corpus.Runs[i]
		collect(run, run.Faulty)
	}

	// Step (c): construct one predicate per (location, variable). Each
	// sample set is independent, so construction fans out over a bounded
	// worker pool; results land in a slice indexed by first-seen key order,
	// and the stable sort below sees exactly the sequence the sequential
	// loop produced — the ranked output is byte-identical either way.
	built := buildParallel(len(order), func(i int) *Predicate {
		return buildPredicate(samples[order[i]])
	})
	for _, p := range built {
		if p != nil {
			a.Predicates = append(a.Predicates, p)
		}
	}

	// Step (d): rank for determinism.
	rankPredicates(a.Predicates)
	return a
}

// buildParallel evaluates build(0..n-1) over a bounded worker pool and
// returns the results in index order, so callers see the sequence the
// sequential loop would have produced regardless of GOMAXPROCS.
func buildParallel(n int, build func(i int) *Predicate) []*Predicate {
	built := make([]*Predicate, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			built[i] = build(i)
		}
		return built
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				built[i] = build(i)
			}
		}()
	}
	wg.Wait()
	return built
}

// rankPredicates sorts by score, then by sample count, then by name for
// determinism. PredNever predicates rank below value predicates of equal
// score (they give the symbolic executor no constraint to use). The final
// tie-break is the unique (location, variable) key, so the ranking depends
// only on the predicate multiset, never on construction order.
func rankPredicates(preds []*Predicate) {
	sort.SliceStable(preds, func(i, j int) bool {
		pi, pj := preds[i], preds[j]
		if pi.Score != pj.Score {
			return pi.Score > pj.Score
		}
		if (pi.Op == PredNever) != (pj.Op == PredNever) {
			return pj.Op == PredNever
		}
		ni, nj := pi.CountC+pi.CountF, pj.CountC+pj.CountF
		if ni != nj {
			return ni > nj
		}
		return pi.Key() < pj.Key()
	})
}

// buildPredicate constructs the optimal threshold predicate for one
// sample set by minimizing the quantification error
// E = |P ∩ C| + |Pᶜ ∩ F| (Eq. 1) over all candidate thresholds and both
// directions, then scores it with Eq. 2.
func buildPredicate(ss *sampleSet) *Predicate {
	nc, nf := len(ss.correct), len(ss.faulty)
	if nc == 0 && nf == 0 {
		return nil
	}
	base := &Predicate{
		Loc:      ss.loc,
		Var:      ss.name,
		Class:    ss.class,
		IsString: ss.isString,
		CountC:   nc,
		CountF:   nf,
	}
	if nf == 0 {
		// The location is only reached by correct executions — the
		// predicate is unsatisfiable in faulty runs ("< -infinity",
		// Table V P7–P10). P(x|C)=0 and P(x|F) is vacuously 1.
		base.Op = PredNever
		base.Score = 1.0
		base.Err = 0
		return base
	}
	if nc == 0 {
		// Only faulty runs reach here; any always-true predicate
		// separates perfectly. Use value ≥ min(F) − ½ to stay informative.
		minF := ss.faulty[0]
		for _, v := range ss.faulty {
			if v < minF {
				minF = v
			}
		}
		base.Op = PredGe
		base.Threshold = float64(minF) - 0.5
		base.Score = 1.0
		base.Err = 0
		return base
	}

	c := append([]int64(nil), ss.correct...)
	f := append([]int64(nil), ss.faulty...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	sort.Slice(f, func(i, j int) bool { return f[i] < f[j] })

	// Candidate thresholds: midpoints between adjacent distinct values of
	// the merged sample.
	merged := make([]int64, 0, len(c)+len(f))
	merged = append(merged, c...)
	merged = append(merged, f...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	thresholds := make([]float64, 0, len(merged))
	for i := 1; i < len(merged); i++ {
		if merged[i] != merged[i-1] {
			thresholds = append(thresholds, float64(merged[i-1])+float64(merged[i]-merged[i-1])/2)
		}
	}
	if len(thresholds) == 0 {
		// All values identical: no separating threshold exists; the best
		// predicate is uninformative (score 0, covered by a degenerate
		// ≥ threshold just below the common value).
		base.Op = PredGe
		base.Threshold = float64(merged[0]) - 0.5
		base.Score = 0
		base.Err = nc // every correct sample satisfies it
		return base
	}

	countGE := func(sorted []int64, t float64) int {
		// Number of values v with float64(v) >= t.
		idx := sort.Search(len(sorted), func(i int) bool { return float64(sorted[i]) >= t })
		return len(sorted) - idx
	}

	bestErr := math.MaxInt
	var bestOp PredOp
	var bestT float64
	for _, t := range thresholds {
		cGE := countGE(c, t)
		fGE := countGE(f, t)
		// Direction x = {a ≥ t}: E = |C ∩ P| + |F ∩ Pᶜ|.
		if e := cGE + (nf - fGE); e < bestErr {
			bestErr, bestOp, bestT = e, PredGe, t
		}
		// Direction x = {a ≤ t}: E = |C ∩ P| + |F ∩ Pᶜ|.
		if e := (nc - cGE) + fGE; e < bestErr {
			bestErr, bestOp, bestT = e, PredLe, t
		}
	}
	base.Op = bestOp
	base.Threshold = bestT
	base.Err = bestErr

	// Eq. 2: score = |P(x|C) − P(x|F)|.
	cGE := countGE(c, bestT)
	fGE := countGE(f, bestT)
	var pc, pf float64
	if bestOp == PredGe {
		pc = float64(cGE) / float64(nc)
		pf = float64(fGE) / float64(nf)
	} else {
		pc = float64(nc-cGE) / float64(nc)
		pf = float64(nf-fGE) / float64(nf)
	}
	base.Score = math.Abs(pc - pf)
	return base
}
