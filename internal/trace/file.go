package trace

import (
	"compress/gzip"
	"fmt"
	"os"
	"strings"
)

// WriteFile serializes the corpus to path; a ".gz" suffix enables gzip
// compression (runtime logs compress ~10x — relevant for grep-sized
// corpora). Returns the bytes written to disk.
func (c *Corpus) WriteFile(path string) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(f)
		if _, err := c.WriteTo(zw); err != nil {
			return 0, err
		}
		if err := zw.Close(); err != nil {
			return 0, err
		}
	} else {
		if _, err := c.WriteTo(f); err != nil {
			return 0, err
		}
	}
	info, err := f.Stat()
	if err != nil {
		return 0, err
	}
	if err := f.Sync(); err != nil {
		return info.Size(), err
	}
	return info.Size(), nil
}

// ReadFile loads a corpus written by WriteFile, transparently handling the
// ".gz" suffix.
func ReadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer zr.Close()
		return ReadCorpus(zr)
	}
	return ReadCorpus(f)
}
