package trace

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// countingWriter tracks bytes that reached the underlying file, so error
// paths can report how much really hit disk (a gzip.Writer buffers
// internally; its Close flushes the tail and can be the first call to see
// a write error).
type countingWriter struct {
	f *os.File
	n int64
}

func (w *countingWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.n += int64(n)
	return n, err
}

// WriteFile serializes the corpus to path; a ".gz" suffix enables gzip
// compression (runtime logs compress ~10x — relevant for grep-sized
// corpora). The corpus is staged in a temp file in the target directory
// and renamed into place only after a successful sync, so a crash or a
// full disk mid-write can never leave a truncated corpus under the final
// name. Returns the bytes written to disk — on error, the bytes that
// actually reached the (now removed) temp file, not a flat 0.
func (c *Corpus) WriteFile(path string) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{f: f}
	cleanup := func() {
		f.Close()
		os.Remove(f.Name())
	}
	if strings.HasSuffix(path, ".gz") {
		zw := gzip.NewWriter(cw)
		if _, err := c.WriteTo(zw); err != nil {
			cleanup()
			return cw.n, err
		}
		if err := zw.Close(); err != nil {
			cleanup()
			return cw.n, err
		}
	} else {
		if _, err := c.WriteTo(cw); err != nil {
			cleanup()
			return cw.n, err
		}
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return cw.n, err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return cw.n, err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFile loads a corpus written by WriteFile, transparently handling the
// ".gz" suffix.
func ReadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %s: %w", path, err)
		}
		defer zr.Close()
		return ReadCorpus(zr)
	}
	return ReadCorpus(f)
}
