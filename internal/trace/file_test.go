package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func readAll(path string) ([]byte, error) { return os.ReadFile(path) }

func writeAll(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func sampleCorpus() *Corpus {
	c := &Corpus{Program: "sample"}
	for i := 0; i < 20; i++ {
		run := Run{ID: i, Faulty: i%3 == 0}
		if run.Faulty {
			run.FaultKind = "buffer-overflow"
			run.FaultFunc = "sink"
		}
		for j := 0; j < 5; j++ {
			run.Records = append(run.Records, Record{
				Loc: Location{Func: "f", Kind: EventEnter},
				Obs: []Observation{
					{Var: "x", Class: ClassParam, Kind: ValueInt, Int: int64(i * j)},
					{Var: "s", Class: ClassGlobal, Kind: ValueString, Str: "abcdefghij"},
				},
			})
		}
		c.Runs = append(c.Runs, run)
	}
	return c
}

func TestWriteReadFilePlain(t *testing.T) {
	c := sampleCorpus()
	path := filepath.Join(t.TempDir(), "corpus.log")
	n, err := c.WriteFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing written")
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != c.Program || len(back.Runs) != len(c.Runs) {
		t.Fatalf("round trip lost data: %d runs", len(back.Runs))
	}
}

func TestWriteReadFileGzip(t *testing.T) {
	c := sampleCorpus()
	dir := t.TempDir()
	plain := filepath.Join(dir, "corpus.log")
	gz := filepath.Join(dir, "corpus.log.gz")
	np, err := c.WriteFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := c.WriteFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if ng >= np {
		t.Errorf("gzip did not shrink the corpus: %d vs %d bytes", ng, np)
	}
	back, err := ReadFile(gz)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(c.Runs) {
		t.Fatalf("gzip round trip lost runs: %d", len(back.Runs))
	}
	for i := range c.Runs {
		if len(back.Runs[i].Records) != len(c.Runs[i].Records) {
			t.Fatalf("run %d records differ", i)
		}
	}
}

func TestWriteFileAtomicReplace(t *testing.T) {
	// An existing (possibly good) corpus under the final name must be
	// replaced wholesale, and no staging temp file may survive the write.
	c := sampleCorpus()
	dir := t.TempDir()
	path := filepath.Join(dir, "corpus.log.gz")
	if err := writeAll(path, []byte("garbage from a previous crash")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatalf("replaced corpus unreadable: %v", err)
	}
	if len(back.Runs) != len(c.Runs) {
		t.Fatalf("replaced corpus lost runs: %d", len(back.Runs))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "corpus.log.gz" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("staging residue left behind: %v", names)
	}
}

func TestWriteFileNoPartialOnError(t *testing.T) {
	// When the write cannot even stage (missing directory), nothing may
	// appear under the final name.
	c := sampleCorpus()
	path := filepath.Join(t.TempDir(), "no-such-dir", "corpus.log")
	if _, err := c.WriteFile(path); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("partial file visible under final name: %v", err)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.log")); err == nil {
		t.Error("missing file accepted")
	}
	// A non-gzip file with .gz suffix must fail cleanly.
	path := filepath.Join(t.TempDir(), "fake.log.gz")
	c := sampleCorpus()
	plain := filepath.Join(t.TempDir(), "real.log")
	if _, err := c.WriteFile(plain); err != nil {
		t.Fatal(err)
	}
	data, err := readAll(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAll(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("plain data with .gz suffix accepted")
	}
}
