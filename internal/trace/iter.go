package trace

import "io"

// RunIterator is a pull-based stream of runs: Next returns runs in corpus
// order and io.EOF after the last one. It is the seam between the
// statistical front-end and corpus storage — an in-memory Corpus and an
// on-disk segmented store (internal/corpus) both satisfy it, so analysis
// code can make one bounded-memory pass without knowing where runs live.
type RunIterator interface {
	Next() (*Run, error)
}

// corpusIter adapts an in-memory Corpus to RunIterator.
type corpusIter struct {
	c *Corpus
	i int
}

func (it *corpusIter) Next() (*Run, error) {
	if it.i >= len(it.c.Runs) {
		return nil, io.EOF
	}
	r := &it.c.Runs[it.i]
	it.i++
	return r, nil
}

// Iter returns an iterator over the corpus's runs in order.
func (c *Corpus) Iter() RunIterator { return &corpusIter{c: c} }
