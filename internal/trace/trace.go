// Package trace defines the runtime-log data model shared by the program
// monitor (which produces logs), and the statistical-analysis and
// candidate-path modules (which consume them). A log corresponds to one
// program run and contains records captured at function entry and exit
// points — the observation model of the paper (§III-B): global variables,
// function parameters, and return values, possibly subsampled.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// EventKind distinguishes function-entry from function-exit records.
type EventKind int

// Event kinds.
const (
	EventEnter EventKind = iota + 1
	EventLeave
)

// String returns "enter" or "leave".
func (k EventKind) String() string {
	switch k {
	case EventEnter:
		return "enter"
	case EventLeave:
		return "leave"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Location identifies an instrumentation point: a function entry or exit.
// The paper's candidate paths are sequences of such locations.
type Location struct {
	Func string    `json:"func"`
	Kind EventKind `json:"kind"`
}

// String renders the location in the paper's notation, e.g.
// "convert_fileName():enter".
func (l Location) String() string {
	return l.Func + "():" + l.Kind.String()
}

// ParseLocation parses the String form back into a Location.
func ParseLocation(s string) (Location, error) {
	i := strings.Index(s, "():")
	if i < 0 {
		return Location{}, fmt.Errorf("trace: malformed location %q", s)
	}
	var kind EventKind
	switch s[i+3:] {
	case "enter":
		kind = EventEnter
	case "leave":
		kind = EventLeave
	default:
		return Location{}, fmt.Errorf("trace: malformed location kind in %q", s)
	}
	return Location{Func: s[:i], Kind: kind}, nil
}

// VarClass categorizes an observed variable, mirroring the paper's logging
// targets (Fig. 8 labels: GLOBAL, FUNCPARAM, RETURN).
type VarClass int

// Variable classes.
const (
	ClassGlobal VarClass = iota + 1
	ClassParam
	ClassReturn
)

// String returns the paper-style class label.
func (c VarClass) String() string {
	switch c {
	case ClassGlobal:
		return "GLOBAL"
	case ClassParam:
		return "FUNCPARAM"
	case ClassReturn:
		return "RETURN"
	default:
		return fmt.Sprintf("VarClass(%d)", int(c))
	}
}

// ValueKind is the dynamic type of an observed value.
type ValueKind int

// Value kinds. Strings are logged by value but analyzed by length (the
// paper's numeric transform and its privacy guidance both reduce strings to
// their lengths).
const (
	ValueInt ValueKind = iota + 1
	ValueString
)

// Observation is a single (variable, value) capture at a location.
type Observation struct {
	Var   string    `json:"var"`
	Class VarClass  `json:"class"`
	Kind  ValueKind `json:"valkind"`
	Int   int64     `json:"int,omitempty"`
	Str   string    `json:"str,omitempty"`
}

// Numeric returns the numeric view of the observation: the value itself for
// ints, the length for strings (the paper's step (b): "transform
// non-numerical variables' characteristics to numerical values").
func (o Observation) Numeric() int64 {
	if o.Kind == ValueString {
		return int64(len(o.Str))
	}
	return o.Int
}

// Record is one instrumentation event with its observations.
type Record struct {
	Loc Location      `json:"loc"`
	Obs []Observation `json:"obs,omitempty"`
}

// Run is one logged program execution, annotated (as in §VII-A) with
// whether it was correct or faulty.
type Run struct {
	ID        int      `json:"id"`
	Faulty    bool     `json:"faulty"`
	FaultKind string   `json:"faultKind,omitempty"`
	FaultFunc string   `json:"faultFunc,omitempty"`
	Records   []Record `json:"records"`
}

// FinalLocation returns the last logged location and true, or false for an
// empty run.
func (r *Run) FinalLocation() (Location, bool) {
	if len(r.Records) == 0 {
		return Location{}, false
	}
	return r.Records[len(r.Records)-1].Loc, true
}

// Locations returns the run's location sequence.
func (r *Run) Locations() []Location {
	locs := make([]Location, len(r.Records))
	for i, rec := range r.Records {
		locs[i] = rec.Loc
	}
	return locs
}

// Corpus is a collection of runs fed to statistical analysis.
type Corpus struct {
	Program string `json:"program"`
	Runs    []Run  `json:"runs"`
}

// Split partitions the corpus into correct and faulty runs (step (a) of the
// paper's algorithm).
func (c *Corpus) Split() (correct, faulty []*Run) {
	for i := range c.Runs {
		r := &c.Runs[i]
		if r.Faulty {
			faulty = append(faulty, r)
		} else {
			correct = append(correct, r)
		}
	}
	return correct, faulty
}

// Counts reports (#runs, #distinct locations, #distinct logged variables),
// the n(R), n(L), n(V) preprocessing counts of the paper's algorithm.
func (c *Corpus) Counts() (runs, locs, vars int) {
	locSet := make(map[Location]struct{})
	varSet := make(map[string]struct{})
	for i := range c.Runs {
		for _, rec := range c.Runs[i].Records {
			locSet[rec.Loc] = struct{}{}
			for _, ob := range rec.Obs {
				varSet[ob.Var] = struct{}{}
			}
		}
	}
	return len(c.Runs), len(locSet), len(varSet)
}

// LocationSet returns every distinct location in the corpus.
func (c *Corpus) LocationSet() map[Location]struct{} {
	set := make(map[Location]struct{})
	for i := range c.Runs {
		for _, rec := range c.Runs[i].Records {
			set[rec.Loc] = struct{}{}
		}
	}
	return set
}

// SizeBytes approximates the serialized size of the corpus. Table II/III
// discussion uses log size to explain which module dominates runtime.
func (c *Corpus) SizeBytes() int {
	n := 0
	for i := range c.Runs {
		for _, rec := range c.Runs[i].Records {
			n += 16 + len(rec.Loc.Func)
			for _, ob := range rec.Obs {
				n += 24 + len(ob.Var) + len(ob.Str)
			}
		}
	}
	return n
}

// WriteTo serializes the corpus as JSON lines: a header line followed by one
// line per run.
func (c *Corpus) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	hdr, err := json.Marshal(struct {
		Program string `json:"program"`
		Runs    int    `json:"runs"`
	}{c.Program, len(c.Runs)})
	if err != nil {
		return 0, err
	}
	n, err := bw.Write(append(hdr, '\n'))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for i := range c.Runs {
		line, err := json.Marshal(&c.Runs[i])
		if err != nil {
			return total, err
		}
		n, err := bw.Write(append(line, '\n'))
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// ReadCorpus parses a corpus previously written with WriteTo.
func ReadCorpus(r io.Reader) (*Corpus, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty corpus stream")
	}
	var hdr struct {
		Program string `json:"program"`
		Runs    int    `json:"runs"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: bad corpus header: %w", err)
	}
	c := &Corpus{Program: hdr.Program, Runs: make([]Run, 0, hdr.Runs)}
	for sc.Scan() {
		var run Run
		if err := json.Unmarshal(sc.Bytes(), &run); err != nil {
			return nil, fmt.Errorf("trace: bad run record: %w", err)
		}
		c.Runs = append(c.Runs, run)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if hdr.Runs != len(c.Runs) {
		return nil, fmt.Errorf("trace: corpus header declares %d runs, found %d", hdr.Runs, len(c.Runs))
	}
	return c, nil
}
