package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLocationString(t *testing.T) {
	l := Location{Func: "defang", Kind: EventEnter}
	if l.String() != "defang():enter" {
		t.Errorf("String = %q", l.String())
	}
	l.Kind = EventLeave
	if l.String() != "defang():leave" {
		t.Errorf("String = %q", l.String())
	}
}

func TestParseLocationRoundTrip(t *testing.T) {
	for _, l := range []Location{
		{Func: "main", Kind: EventEnter},
		{Func: "convert_fileName", Kind: EventLeave},
		{Func: "a_b_c", Kind: EventEnter},
	} {
		back, err := ParseLocation(l.String())
		if err != nil {
			t.Fatalf("ParseLocation(%q): %v", l.String(), err)
		}
		if back != l {
			t.Errorf("round trip %v -> %v", l, back)
		}
	}
}

func TestParseLocationErrors(t *testing.T) {
	for _, s := range []string{"", "main", "main():", "main():inside", "():"} {
		if _, err := ParseLocation(s); err == nil && s != "():" {
			// "():" with empty func parses but has an invalid kind; all
			// listed strings must error.
			t.Errorf("ParseLocation(%q) succeeded", s)
		}
	}
}

// TestParseLocationProperty: any function name without "():" substring
// survives the round trip.
func TestParseLocationProperty(t *testing.T) {
	f := func(name string) bool {
		if strings.Contains(name, "():") {
			return true
		}
		l := Location{Func: name, Kind: EventEnter}
		back, err := ParseLocation(l.String())
		return err == nil && back == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestObservationNumeric(t *testing.T) {
	if (Observation{Kind: ValueInt, Int: -7}).Numeric() != -7 {
		t.Error("int numeric")
	}
	if (Observation{Kind: ValueString, Str: "hello"}).Numeric() != 5 {
		t.Error("string numeric should be length")
	}
}

func TestRunHelpers(t *testing.T) {
	r := &Run{Records: []Record{
		{Loc: Location{Func: "a", Kind: EventEnter}},
		{Loc: Location{Func: "b", Kind: EventEnter}},
	}}
	fin, ok := r.FinalLocation()
	if !ok || fin.Func != "b" {
		t.Errorf("final = %v, %v", fin, ok)
	}
	locs := r.Locations()
	if len(locs) != 2 || locs[0].Func != "a" {
		t.Errorf("locations = %v", locs)
	}
	empty := &Run{}
	if _, ok := empty.FinalLocation(); ok {
		t.Error("empty run has a final location")
	}
}

func TestCorpusSplitAndCounts(t *testing.T) {
	c := &Corpus{Runs: []Run{
		{ID: 0, Faulty: false, Records: []Record{{
			Loc: Location{Func: "a", Kind: EventEnter},
			Obs: []Observation{{Var: "x", Kind: ValueInt, Int: 1}},
		}}},
		{ID: 1, Faulty: true, Records: []Record{{
			Loc: Location{Func: "b", Kind: EventEnter},
			Obs: []Observation{{Var: "y", Kind: ValueInt, Int: 2}},
		}}},
		{ID: 2, Faulty: true},
	}}
	correct, faulty := c.Split()
	if len(correct) != 1 || len(faulty) != 2 {
		t.Errorf("split = %d/%d", len(correct), len(faulty))
	}
	runs, locs, vars := c.Counts()
	if runs != 3 || locs != 2 || vars != 2 {
		t.Errorf("counts = %d/%d/%d", runs, locs, vars)
	}
	if c.SizeBytes() == 0 {
		t.Error("SizeBytes = 0")
	}
	set := c.LocationSet()
	if len(set) != 2 {
		t.Errorf("location set = %v", set)
	}
}

func TestCorpusSerializationRoundTrip(t *testing.T) {
	c := &Corpus{
		Program: "demo",
		Runs: []Run{
			{ID: 0, Faulty: false, Records: []Record{{
				Loc: Location{Func: "f", Kind: EventEnter},
				Obs: []Observation{
					{Var: "n", Class: ClassParam, Kind: ValueInt, Int: 42},
					{Var: "s", Class: ClassGlobal, Kind: ValueString, Str: "hi\nthere"},
				},
			}}},
			{ID: 1, Faulty: true, FaultKind: "buffer-overflow", FaultFunc: "f"},
		},
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	back, err := ReadCorpus(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Program != "demo" || len(back.Runs) != 2 {
		t.Fatalf("read back %+v", back)
	}
	r0 := back.Runs[0]
	if len(r0.Records) != 1 || r0.Records[0].Obs[1].Str != "hi\nthere" {
		t.Errorf("record content lost: %+v", r0)
	}
	r1 := back.Runs[1]
	if !r1.Faulty || r1.FaultFunc != "f" {
		t.Errorf("fault annotation lost: %+v", r1)
	}
}

func TestReadCorpusErrors(t *testing.T) {
	if _, err := ReadCorpus(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCorpus(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage header accepted")
	}
	if _, err := ReadCorpus(strings.NewReader(`{"program":"x","runs":2}` + "\n")); err == nil {
		t.Error("truncated corpus accepted")
	}
}

func TestVarClassStrings(t *testing.T) {
	if ClassGlobal.String() != "GLOBAL" || ClassParam.String() != "FUNCPARAM" || ClassReturn.String() != "RETURN" {
		t.Error("class labels wrong")
	}
	if EventEnter.String() != "enter" || EventLeave.String() != "leave" {
		t.Error("event labels wrong")
	}
}
