package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// msgtool symbolic-input sizes.
const (
	msgtoolMaxTitle = 80
	msgtoolMaxBody  = 200
)

// msgtoolSrc is an extension program (not one of the paper's four): a
// message packing/unpacking tool with TWO distinct buffer overflows in
// different functions, triggered by different inputs. It exercises the
// §III-C extension — isolating multiple vulnerabilities by clustering
// faulty logs per fault and running the pipeline once per cluster.
const msgtoolSrc = `
// msgtool - message encode/decode utility with two injected bugs.
global int msgs_packed = 0;
global int msgs_unpacked = 0;
global int checksum = 0;
global string mode;

// parse_mode reads the operating mode from argv.
func parse_mode(int argc) int {
  if (argc < 1) {
    return 0;
  }
  mode = arg(0);
  if (mode == "encode") {
    return 1;
  }
  if (mode == "decode") {
    return 2;
  }
  return 0;
}

// pack_header is fault point #1: the title is copied into a fixed 32-byte
// header with no bounds check.
func pack_header(string title) int {
  buf header[32];
  int i = 0;
  while (i < len(title)) {
    bufwrite(header, i, char(title, i));
    i = i + 1;
  }
  bufwrite(header, i, 0);
  msgs_packed = msgs_packed + 1;
  return i;
}

// checksum_body folds the body length into the running checksum.
func checksum_body(string body) int {
  checksum = checksum + len(body);
  return checksum;
}

// unpack_payload is fault point #2: the body is copied into a fixed
// 96-byte workspace with no bounds check.
func unpack_payload(string body) int {
  buf payload[96];
  int i = 0;
  while (i < len(body)) {
    bufwrite(payload, i, char(body, i));
    i = i + 1;
  }
  bufwrite(payload, i, 0);
  msgs_unpacked = msgs_unpacked + 1;
  return i;
}

// verify_payload sanity-checks the unpacked length.
func verify_payload(int n) int {
  if (n < 0) {
    return 0;
  }
  checksum = checksum + n;
  return 1;
}

func main() int {
  int op = parse_mode(nargs());
  if (op == 0) {
    print("usage: msgtool {encode|decode}");
    return 1;
  }
  if (op == 1) {
    string title = input_string("title");
    int n = pack_header(title);
    checksum_body(title);
    print(n);
    return 0;
  }
  string body = input_string("body");
  int m = unpack_payload(body);
  verify_payload(m);
  print(m);
  return 0;
}
`

// MsgTool returns the two-vulnerability extension app. Its workload mixes
// encode runs (which can overflow pack_header) and decode runs (which can
// overflow unpack_payload); VulnFunc/VulnKind describe the more frequent
// first bug.
func MsgTool() *App {
	return &App{
		Name:        "msgtool",
		Description: "message tool with two distinct buffer overflows (multi-vulnerability extension)",
		Source:      msgtoolSrc,
		Spec: &symexec.InputSpec{
			NArgs:        1,
			ConcreteArgs: map[int]string{}, // mode stays symbolic-free per run; set per cluster
			StrLenMax: map[string]int64{
				"title": msgtoolMaxTitle,
				"body":  msgtoolMaxBody,
			},
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			if rng.Intn(2) == 0 {
				var n int
				if rng.Intn(2) == 0 {
					n = rng.Intn(32)
				} else {
					n = 32 + rng.Intn(msgtoolMaxTitle-32)
				}
				return &interp.Input{
					Args: []string{"encode"},
					Strs: map[string]string{"title": randName(rng, n, false)},
				}
			}
			var n int
			if rng.Intn(2) == 0 {
				n = rng.Intn(96)
			} else {
				n = 96 + rng.Intn(msgtoolMaxBody-96)
			}
			return &interp.Input{
				Args: []string{"decode"},
				Strs: map[string]string{"body": randName(rng, n, false)},
			}
		},
		VulnFunc:  "pack_header",
		VulnKind:  interp.FaultBufferOverflow,
		PureFails: false,
	}
}
