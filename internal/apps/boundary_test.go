package apps

import (
	"strings"
	"testing"

	"repro/internal/interp"
)

// faultsWith reports whether the app faults (in its documented function)
// on the given input.
func faultsWith(t *testing.T, app *App, in *interp.Input) bool {
	t.Helper()
	res, err := interp.Run(app.Program(), in, interp.Config{})
	if err != nil {
		t.Fatalf("%s: %v", app.Name, err)
	}
	if res.Faulty() && res.FaultFunc != app.VulnFunc {
		t.Fatalf("%s: fault in %s, expected only %s", app.Name, res.FaultFunc, app.VulnFunc)
	}
	return res.Faulty()
}

func TestPolymorphOverflowBoundary(t *testing.T) {
	app := Polymorph()
	mk := func(n int) *interp.Input {
		return &interp.Input{Args: []string{"-f", strings.Repeat("a", n)}}
	}
	// convert_fileName copies len bytes then writes the terminator at
	// index len into the 512-byte buffer: 511 is safe, 512 overflows.
	if faultsWith(t, app, mk(511)) {
		t.Error("511-byte name faulted")
	}
	if !faultsWith(t, app, mk(512)) {
		t.Error("512-byte name did not fault")
	}
}

func TestPolymorphHiddenSkipsConversion(t *testing.T) {
	app := Polymorph()
	// A hidden (dot) file without -h never reaches convert_fileName, so
	// even an overflowing length is safe.
	long := "." + strings.Repeat("a", 600)
	if faultsWith(t, app, &interp.Input{Args: []string{"-f", long}}) {
		t.Error("hidden file was converted without -h")
	}
	// With -h it is converted and overflows.
	if !faultsWith(t, app, &interp.Input{Args: []string{"-h", "-f", long}}) {
		t.Error("-h did not convert the hidden file")
	}
}

func TestCTreeOverflowBoundary(t *testing.T) {
	app := CTree()
	mk := func(n int) *interp.Input {
		return &interp.Input{
			Args: []string{"-q", "df"},
			Env:  map[string]string{"STONESOUP_TAINT_SOURCE": strings.Repeat("x", n)},
		}
	}
	if faultsWith(t, app, mk(63)) {
		t.Error("63-byte taint faulted")
	}
	if !faultsWith(t, app, mk(64)) {
		t.Error("64-byte taint did not fault")
	}
}

func TestThttpdOverflowBoundary(t *testing.T) {
	app := Thttpd()
	mk := func(req string) *interp.Input {
		return &interp.Input{Strs: map[string]string{"request": req}}
	}
	// Plain request: the defang terminator overflows at 1000 bytes.
	if faultsWith(t, app, mk(strings.Repeat("a", 999))) {
		t.Error("999-byte plain request faulted")
	}
	if !faultsWith(t, app, mk(strings.Repeat("a", 1000))) {
		t.Error("1000-byte plain request did not fault")
	}
	// Angle brackets expand 4x: 250 '<' characters write 1000 bytes and
	// the terminator overflows.
	if !faultsWith(t, app, mk(strings.Repeat("<", 250))) {
		t.Error("250 '<' expansion did not overflow")
	}
	if faultsWith(t, app, mk(strings.Repeat("<", 249))) {
		t.Error("249 '<' expansion faulted early")
	}
}

func TestGrepOverflowBoundary(t *testing.T) {
	app := Grep()
	mk := func(n int) *interp.Input {
		return &interp.Input{
			Args: []string{"-c", "ab"},
			Strs: map[string]string{"data": "line\n"},
			Env:  map[string]string{"STONESOUP_TAINT_SOURCE": strings.Repeat("x", n)},
		}
	}
	if faultsWith(t, app, mk(127)) {
		t.Error("127-byte taint faulted")
	}
	if !faultsWith(t, app, mk(128)) {
		t.Error("128-byte taint did not fault")
	}
}

func TestMsgtoolBoundaries(t *testing.T) {
	app := MsgTool()
	encode := func(n int) *interp.Input {
		return &interp.Input{
			Args: []string{"encode"},
			Strs: map[string]string{"title": strings.Repeat("t", n)},
		}
	}
	res, _ := interp.Run(app.Program(), encode(31), interp.Config{})
	if res.Faulty() {
		t.Error("31-byte title faulted")
	}
	res, _ = interp.Run(app.Program(), encode(32), interp.Config{})
	if !res.Faulty() || res.FaultFunc != "pack_header" {
		t.Errorf("32-byte title: %+v", res)
	}
}

func TestBillingBoundary(t *testing.T) {
	app := Billing()
	mk := func(pct int64) *interp.Input {
		return &interp.Input{Ints: map[string]int64{"items": 3, "discount": pct, "buckets": 2}}
	}
	res, _ := interp.Run(app.Program(), mk(90), interp.Config{})
	if res.Faulty() {
		t.Error("90% discount faulted")
	}
	res, _ = interp.Run(app.Program(), mk(95), interp.Config{})
	if !res.Faulty() || res.FaultFunc != "apply_discount" {
		t.Errorf("95%% discount: fault=%v in %s", res.Fault, res.FaultFunc)
	}
	// Division by zero with zero buckets is reachable concretely (the
	// workload never generates it; symbolic analysis with a symbolic
	// buckets channel finds it — see core tests).
	res, _ = interp.Run(app.Program(), &interp.Input{
		Ints: map[string]int64{"items": 1, "discount": 10, "buckets": 0},
	}, interp.Config{})
	if !res.Faulty() || res.FaultFunc != "split_tax" {
		t.Errorf("zero buckets: fault=%v in %s", res.Fault, res.FaultFunc)
	}
}

func TestSpecsKeepOptionsConcrete(t *testing.T) {
	// The symbolic-input specs concretize option strings (the paper's
	// "semantically reasonable program input options").
	for _, app := range All() {
		spec := app.Spec
		if spec == nil {
			t.Fatalf("%s: nil spec", app.Name)
		}
		switch app.Name {
		case "polymorph":
			if spec.ConcreteArgs[1] != "-f" {
				t.Errorf("polymorph spec args: %v", spec.ConcreteArgs)
			}
		case "ctree":
			if spec.ConcreteArgs[0] != "-n" {
				t.Errorf("ctree spec args: %v", spec.ConcreteArgs)
			}
		case "grep":
			if spec.ConcreteArgs[0] != "-c" {
				t.Errorf("grep spec args: %v", spec.ConcreteArgs)
			}
		}
	}
}
