package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// Grep symbolic-input sizes.
const (
	grepMaxPattern = 24
	grepMaxData    = 48
	grepMaxTaint   = 400
)

// grepSrc is the MiniC port of Grep (NIST STONESOUP). The injected
// vulnerability mirrors CTree's (§VII-C3): a tainted environment buffer is
// expanded into a fixed 128-byte stack buffer inside the injected
// stonesoup_expand routine. The pattern compiler and line matcher branch
// per character of symbolic input, which defeats pure symbolic execution;
// the program also emits by far the largest runtime logs of the four apps
// (the paper observes grep's statistical-analysis time dominating).
const grepSrc = `
// grep - plain-text search (STONESOUP port).
global int opt_ignorecase = 0;
global int opt_count_only = 0;
global int opt_invert = 0;
global int lines_scanned = 0;
global int matches_found = 0;
global int pattern_classes = 0;
global int pattern_literals = 0;
global int pattern_wildcards = 0;
global string pattern;
global string stonesoup_tainted_buff;

// parse_options handles -i / -c / -v and takes the pattern operand.
func parse_options(int argc) int {
  int i = 0;
  while (i < argc) {
    string opt = arg(i);
    if (opt == "-i") {
      opt_ignorecase = 1;
      i = i + 1;
    } else if (opt == "-c") {
      opt_count_only = 1;
      i = i + 1;
    } else if (opt == "-v") {
      opt_invert = 1;
      i = i + 1;
    } else {
      pattern = opt;
      i = i + 1;
    }
  }
  return 1;
}

// classify_pattern_char maps a pattern character to a token kind.
func classify_pattern_char(int c) int {
  if (c == '*') {
    return 1;
  }
  if (c == '.') {
    return 2;
  }
  if (c == '[') {
    return 3;
  }
  return 0;
}

// compile_pattern tokenizes the pattern character by character; every
// character multiplies the symbolic state space.
func compile_pattern(string pat) int {
  int i = 0;
  while (i < len(pat)) {
    int k = classify_pattern_char(char(pat, i));
    if (k == 1) {
      pattern_wildcards = pattern_wildcards + 1;
    } else if (k == 2) {
      pattern_wildcards = pattern_wildcards + 1;
    } else if (k == 3) {
      pattern_classes = pattern_classes + 1;
    } else {
      pattern_literals = pattern_literals + 1;
    }
    i = i + 1;
  }
  return pattern_literals + pattern_wildcards + pattern_classes;
}

// match_char tests one character against the pattern head.
func match_char(int pc, int dc) int {
  if (pc == '.') {
    return 1;
  }
  if (pc == dc) {
    return 1;
  }
  if (opt_ignorecase == 1) {
    if (pc + 32 == dc) {
      return 1;
    }
    if (dc + 32 == pc) {
      return 1;
    }
  }
  return 0;
}

// match_line reports whether the pattern's first character occurs in the
// line segment [start, end).
func match_line(string data, int start, int end) int {
  if (len(pattern) == 0) {
    return 1;
  }
  int pc = char(pattern, 0);
  int i = start;
  while (i < end) {
    if (match_char(pc, char(data, i)) == 1) {
      return 1;
    }
    i = i + 1;
  }
  return 0;
}

// scan_lines splits the input at newlines and matches each line.
func scan_lines(string data) int {
  int start = 0;
  int i = 0;
  int n = len(data);
  while (i < n) {
    if (char(data, i) == 10) {
      lines_scanned = lines_scanned + 1;
      int m = match_line(data, start, i);
      if (m == 1) {
        matches_found = matches_found + 1;
      }
      start = i + 1;
    }
    i = i + 1;
  }
  if (start < n) {
    lines_scanned = lines_scanned + 1;
    if (match_line(data, start, n) == 1) {
      matches_found = matches_found + 1;
    }
  }
  return matches_found;
}

// optimize_pattern rewrites wildcard-heavy patterns; only runs whose
// pattern contains wildcards traverse it.
func optimize_pattern(string pat) int {
  int saved = pattern_wildcards;
  if (saved > len(pat)) {
    saved = len(pat);
  }
  return saved;
}

// invert_results flips the match polarity for -v runs.
func invert_results(int found) int {
  matches_found = lines_scanned - found;
  if (matches_found < 0) {
    matches_found = 0;
  }
  return matches_found;
}

// fold_case lowercases the pattern for -i runs.
func fold_case(string pat) int {
  int n = len(pat);
  opt_ignorecase = opt_ignorecase + 0;
  return n;
}

// exact_case validates the pattern for case-sensitive runs; exactly one of
// fold_case / exact_case appears on any run's path.
func exact_case(string pat) int {
  int n = len(pat);
  pattern_literals = pattern_literals + 0;
  return n;
}

// stonesoup_read_taint ingests the injected taint source.
func stonesoup_read_taint() string {
  string t = env("STONESOUP_TAINT_SOURCE");
  stonesoup_tainted_buff = t;
  return t;
}

// stonesoup_expand is the fault point: the tainted buffer is copied into a
// fixed 128-byte workspace with no bounds check; the terminator write
// overflows once the taint reaches 128 bytes.
func stonesoup_expand(string tainted) int {
  buf workspace[128];
  int i = 0;
  while (i < len(tainted)) {
    bufwrite(workspace, i, char(tainted, i));
    i = i + 1;
  }
  bufwrite(workspace, i, 0);
  return i;
}

// report_results prints the match summary.
func report_results(int count) void {
  if (opt_count_only == 1) {
    print(count);
    return;
  }
  print(matches_found);
  print(lines_scanned);
  return;
}

func main() int {
  parse_options(nargs());
  compile_pattern(pattern);
  if (opt_ignorecase == 1) {
    fold_case(pattern);
  } else {
    exact_case(pattern);
  }
  if (pattern_wildcards > 0) {
    optimize_pattern(pattern);
  }
  string data = input_string("data");
  int found = scan_lines(data);
  if (opt_invert == 1) {
    found = invert_results(found);
  }
  string taint = stonesoup_read_taint();
  stonesoup_expand(taint);
  report_results(found);
  return 0;
}
`

// Grep returns the Grep evaluation app. Pure symbolic execution fails
// (pattern/line scanning explosion); StatSym follows the candidate path to
// stonesoup_expand. Its large logs make statistical analysis the dominant
// cost, matching Table II/III's shape.
func Grep() *App {
	return &App{
		Name:        "grep",
		Description: "plain-text search with a STONESOUP 128-byte stack-buffer overflow",
		Source:      grepSrc,
		Spec: &symexec.InputSpec{
			NArgs:        2,
			ConcreteArgs: map[int]string{0: "-c"},
			StrLenMax: map[string]int64{
				"arg1":                   grepMaxPattern,
				"data":                   grepMaxData,
				"STONESOUP_TAINT_SOURCE": grepMaxTaint,
			},
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			var taintLen int
			if rng.Intn(2) == 0 {
				taintLen = rng.Intn(128)
			} else {
				taintLen = 128 + rng.Intn(grepMaxTaint-128)
			}
			pat := make([]byte, 1+rng.Intn(grepMaxPattern-1))
			const patChars = "abc.*["
			for i := range pat {
				pat[i] = patChars[rng.Intn(len(patChars))]
			}
			// Multi-line haystack so scan_lines calls match_line many
			// times (big logs).
			var data []byte
			lines := 2 + rng.Intn(10)
			for l := 0; l < lines; l++ {
				data = append(data, []byte(randName(rng, 1+rng.Intn(6), false))...)
				data = append(data, '\n')
			}
			if len(data) > grepMaxData {
				data = data[:grepMaxData]
			}
			// Users vary flags; -v runs traverse invert_results.
			args := []string{"-c", string(pat)}
			if rng.Intn(3) == 0 {
				args = append([]string{"-v"}, args...)
			}
			if rng.Intn(3) == 0 {
				args = append([]string{"-i"}, args...)
			}
			return &interp.Input{
				Args: args,
				Strs: map[string]string{"data": string(data)},
				Env:  map[string]string{"STONESOUP_TAINT_SOURCE": randName(rng, taintLen, false)},
			}
		},
		VulnFunc:  "stonesoup_expand",
		VulnKind:  interp.FaultBufferOverflow,
		PureFails: true,
	}
}
