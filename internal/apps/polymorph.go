package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// polymorphMaxName is the declared symbolic size of the file-name argument
// (KLEE-style symbolic input size). The stack buffer is 512 bytes, so the
// overflow lies well inside the modeled range.
const polymorphMaxName = 600

// polymorphSrc is the MiniC port of polymorph (Bugbench), a file-name
// conversion utility. The vulnerability is the one documented in the
// paper's case study (§VII-C1): convert_fileName copies the user-provided
// name into a 512-byte stack buffer without a bounds check. Function names
// and globals follow Fig. 8 of the paper.
const polymorphSrc = `
// polymorph - file name conversion utility (Bugbench port).
global string target;
global string wd = ".";
global int hidden = 0;
global int track = 0;
global int clean = 0;
global int init_file = 0;
global int hidden_file = 0;

// grok_commandLine parses argv. The -f option supplies the name to
// convert; -c and -h toggle clean and hidden handling.
func grok_commandLine(int argc) int {
  int i = 0;
  int got = 0;
  while (i < argc) {
    string opt = arg(i);
    if (opt == "-f") {
      if (i + 1 < argc) {
        target = arg(i + 1);
        got = 1;
        i = i + 2;
      } else {
        i = i + 1;
      }
    } else if (opt == "-c") {
      clean = 1;
      i = i + 1;
    } else if (opt == "-h") {
      hidden = 1;
      i = i + 1;
    } else {
      i = i + 1;
    }
  }
  return got;
}

// is_fileHidden reports whether the name denotes a hidden (dot) file.
func is_fileHidden(string suspect) int {
  if (len(suspect) < 1) {
    return 0;
  }
  if (char(suspect, 0) == '.') {
    hidden_file = 1;
    return 1;
  }
  return 0;
}

// does_nameHaveUppers scans the name prefix for uppercase characters that
// would need conversion. The scan is prefix-bounded.
func does_nameHaveUppers(string suspect) int {
  int limit = len(suspect);
  if (limit > 2) {
    limit = 2;
  }
  int i = 0;
  while (i < limit) {
    int c = char(suspect, i);
    if (c >= 'A') {
      if (c <= 'Z') {
        return 1;
      }
    }
    i = i + 1;
  }
  return 0;
}

// handle_hidden prepares a hidden (dot) file for conversion when -h was
// given. Only some faulty runs traverse it, so its entry/exit points
// surface as a detour during candidate-path construction.
func handle_hidden(string name) int {
  track = track + 1;
  if (len(name) > 1) {
    init_file = init_file + 1;
  }
  return len(name);
}

// does_newnameExist emulates the filesystem existence check for the
// converted name; only the empty name "exists" in this model.
func does_newnameExist(string suspect) int {
  if (len(suspect) == 0) {
    return 1;
  }
  init_file = init_file + 1;
  return 0;
}

// convert_fileName is the fault point: each character of the
// user-controlled name is copied into the fixed 512-byte newName buffer
// with no bounds check, and the terminator write overflows once
// len(original) reaches 512.
func convert_fileName(string original) int {
  buf newName[512];
  int up = does_nameHaveUppers(original);
  int delta = 0;
  if (up == 1) {
    delta = 32;
  }
  int i = 0;
  while (i < len(original)) {
    bufwrite(newName, i, char(original, i) + delta);
    i = i + 1;
  }
  bufwrite(newName, i, 0);
  track = track + 1;
  does_newnameExist(bufstr(newName, i));
  return i;
}

func main() int {
  wd = "/tmp/polymorph";
  int got = grok_commandLine(nargs());
  if (got == 0) {
    print("usage: polymorph -f <filename>");
    return 1;
  }
  is_fileHidden(target);
  if (hidden_file == 1) {
    if (hidden == 0) {
      print("skipping hidden file");
      return 0;
    }
    handle_hidden(target);
  }
  int n = convert_fileName(target);
  track = track + 1;
  clean = clean + 0;
  print(n);
  return 0;
}
`

// Polymorph returns the polymorph evaluation app. Pure symbolic execution
// succeeds on it (Table IV), exploring thousands of paths; StatSym's
// guidance reaches the overflow with a small fraction of that work.
func Polymorph() *App {
	return &App{
		Name:        "polymorph",
		Description: "file-name conversion utility with a 512-byte stack-buffer overflow (Bugbench)",
		Source:      polymorphSrc,
		Spec: &symexec.InputSpec{
			// Symbolically: polymorph -h -f <name>, with the name the
			// symbolic payload. Passing -h keeps the hidden-file handling
			// (and its detour) reachable for the symbolic executor.
			NArgs:        3,
			ConcreteArgs: map[int]string{0: "-h", 1: "-f"},
			StrLenMax:    map[string]int64{"arg2": polymorphMaxName},
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			var n int
			if rng.Intn(2) == 0 {
				n = rng.Intn(512) // benign lengths
			} else {
				n = 512 + rng.Intn(polymorphMaxName-512) // overflowing lengths
			}
			hidden := rng.Intn(3) == 0
			name := randName(rng, n, hidden)
			// Some users pass -h (convert hidden files too); hidden names
			// without -h exit early and log a different call sequence.
			if rng.Intn(2) == 0 {
				return &interp.Input{Args: []string{"-h", "-f", name}}
			}
			return &interp.Input{Args: []string{"-f", name}}
		},
		VulnFunc:  "convert_fileName",
		VulnKind:  interp.FaultBufferOverflow,
		PureFails: false,
	}
}
