// Package apps contains the four evaluation programs of the paper —
// polymorph (Bugbench), CTree and Grep (NIST STONESOUP), and thttpd —
// re-authored in MiniC with the same function structure, global variables,
// and documented vulnerabilities (§VII-A, Table I). Each app carries its
// symbolic-input configuration (the "semantically reasonable program input
// options" both StatSym and KLEE receive) and a workload generator that
// emulates user runs with random inputs (§V-A).
package apps

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/symexec"
)

// App bundles one evaluation program.
type App struct {
	Name        string
	Description string
	Source      string

	// Spec configures symbolic inputs for both StatSym and the pure
	// baseline.
	Spec *symexec.InputSpec

	// NewInput draws one random test input (the emulated user run).
	NewInput func(rng *rand.Rand) *interp.Input

	// VulnFunc and VulnKind identify the known vulnerability, used to
	// validate discovered paths.
	VulnFunc string
	VulnKind interp.FaultKind

	// PureFails records the paper's Table IV expectation: pure symbolic
	// execution exhausts memory on this program.
	PureFails bool

	once sync.Once
	prog *bytecode.Program
}

// Program compiles the app (cached).
func (a *App) Program() *bytecode.Program {
	a.once.Do(func() {
		a.prog = bytecode.MustCompile(a.Name, a.Source)
	})
	return a.prog
}

// AST parses and checks the app source (uncached; used for Table I).
func (a *App) AST() *minic.Program {
	return minic.MustParse(a.Name, a.Source)
}

// Stats computes the app's Table I row.
func (a *App) Stats() minic.ProgramStats {
	return minic.Stats(a.AST(), a.Source)
}

// All returns the four evaluation apps in the paper's order.
func All() []*App {
	return []*App{Polymorph(), CTree(), Thttpd(), Grep()}
}

// Extras returns the applications added beyond the paper's evaluation set
// (extensions exercised by examples and tests, not by the paper's tables).
func Extras() []*App {
	return []*App{MsgTool(), Billing()}
}

// Get returns the named app (evaluation set or extras).
func Get(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	for _, a := range Extras() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q (have polymorph, ctree, thttpd, grep, msgtool, billing)", name)
}

// randName draws a random file-name-ish string of the given length:
// lowercase letters, digits, dots and dashes, never starting with a dot
// unless hidden is set.
func randName(rng *rand.Rand, n int, hidden bool) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789-_"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	if n > 0 && hidden {
		b[0] = '.'
	}
	return string(b)
}
