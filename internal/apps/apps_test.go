package apps

import (
	"math/rand"
	"testing"

	"repro/internal/interp"
)

func TestAppsCompile(t *testing.T) {
	for _, app := range All() {
		if app.Program() == nil {
			t.Errorf("%s: nil program", app.Name)
		}
	}
}

func TestAppsStats(t *testing.T) {
	// Table I shape: polymorph is the smallest; thttpd and grep are the
	// larger programs.
	st := map[string]int{}
	for _, app := range All() {
		s := app.Stats()
		if s.SLOC == 0 || s.Functions == 0 {
			t.Errorf("%s: empty stats %+v", app.Name, s)
		}
		st[app.Name] = s.SLOC
	}
	if st["polymorph"] >= st["ctree"] || st["ctree"] >= st["thttpd"] {
		t.Errorf("SLOC ordering unexpected: %v", st)
	}
}

func TestWorkloadsProduceBothClasses(t *testing.T) {
	for _, app := range All() {
		rng := rand.New(rand.NewSource(11))
		faulty, correct := 0, 0
		for i := 0; i < 300 && (faulty < 5 || correct < 5); i++ {
			res, err := interp.Run(app.Program(), app.NewInput(rng), interp.Config{})
			if err != nil {
				t.Fatalf("%s: run error: %v", app.Name, err)
			}
			if res.Faulty() {
				faulty++
				if res.Fault != app.VulnKind || res.FaultFunc != app.VulnFunc {
					t.Errorf("%s: fault %v in %s, want %v in %s",
						app.Name, res.Fault, res.FaultFunc, app.VulnKind, app.VulnFunc)
				}
			} else {
				correct++
			}
		}
		if faulty < 5 || correct < 5 {
			t.Errorf("%s: workload mix %d faulty / %d correct after 300 runs",
				app.Name, faulty, correct)
		}
	}
}

func TestGetApp(t *testing.T) {
	for _, name := range []string{"polymorph", "ctree", "thttpd", "grep"} {
		app, err := Get(name)
		if err != nil || app.Name != name {
			t.Errorf("Get(%s) = %v, %v", name, app, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) should fail")
	}
}
