package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// thttpd symbolic-input size: requests long enough to overflow defang's
// 1000-byte buffer.
const thttpdMaxRequest = 1200

// thttpdSrc is the MiniC port of the thttpd web server (version 2.25's
// CVE-2003-0899 neighborhood): defang() rewrites '<' and '>' in a
// user-controlled string into "&lt;"/"&gt;" while copying it into the
// fixed dfstr buffer, and the copy has no bounds check (§VII-C2). The
// request-parsing scan branches per character, so pure symbolic execution
// drowns in states long before reaching defang (Table IV: Failed).
const thttpdSrc = `
// thttpd - tiny HTTP daemon (vulnerable defang port).
global int conn_state = 0;
global int bytes_received = 0;
global int bytes_sent = 0;
global int requests_handled = 0;
global int auth_required = 0;
global int log_entries = 0;
global int escapes_seen = 0;
global int amps_seen = 0;
global string method;
global string request_uri;
global int last_timer = 0;
global int conn_started = 0;

// tmr_run advances the timer wheel (connection timeouts, stats flushes).
func tmr_run(int now) int {
  int fired = 0;
  if (now - last_timer >= 10) {
    fired = fired + 1;
    last_timer = now;
  }
  if (conn_state > 0) {
    if (now - conn_started > 300) {
      fired = fired + 1;
    }
  }
  return fired;
}

// mime_find_type maps a URI suffix character to a content-type class.
func mime_find_type(string uri) int {
  int n = len(uri);
  if (n == 0) {
    return 0;
  }
  int c = char(uri, n - 1);
  if (c == 'l') {
    return 1;
  }
  if (c == 't') {
    return 2;
  }
  if (c == 'g') {
    return 3;
  }
  return 0;
}

// hexit converts one hex digit to its value (-1 for non-hex).
func hexit(int c) int {
  if (c >= '0') {
    if (c <= '9') {
      return c - '0';
    }
  }
  if (c >= 'a') {
    if (c <= 'f') {
      return c - 'a' + 10;
    }
  }
  if (c >= 'A') {
    if (c <= 'F') {
      return c - 'A' + 10;
    }
  }
  return 0 - 1;
}

// sockaddr_check validates the (modeled) peer address family.
func sockaddr_check(int family) int {
  if (family == 2) {
    return 1;
  }
  if (family == 10) {
    return 1;
  }
  return 0;
}

// handle_newconnect accepts the connection and initializes per-connection
// state.
func handle_newconnect(int fd) int {
  if (fd < 0) {
    return 0;
  }
  conn_state = 1;
  return 1;
}

// handle_read pulls the request bytes off the socket.
func handle_read(string req) int {
  bytes_received = len(req);
  conn_state = 2;
  return bytes_received;
}

// scan_method extracts the method token (characters before the first
// space, capped at 8).
func scan_method(string req) string {
  int n = len(req);
  if (n > 8) {
    n = 8;
  }
  int i = 0;
  while (i < n) {
    if (char(req, i) == ' ') {
      return substr(req, 0, i);
    }
    i = i + 1;
  }
  return substr(req, 0, n);
}

// httpd_parse_request validates the request character by character,
// counting URL escapes and entity ampersands. Each character multiplies
// the symbolic state space — the loop KLEE cannot get past.
func httpd_parse_request(string req) int {
  int i = 0;
  while (i < len(req)) {
    int c = char(req, i);
    if (c == '%') {
      escapes_seen = escapes_seen + 1;
    } else if (c == '&') {
      amps_seen = amps_seen + 1;
    } else {
      bytes_received = bytes_received + 0;
    }
    i = i + 1;
  }
  conn_state = 3;
  return i;
}

// decode_escapes handles %-escaped requests; only requests containing '%'
// traverse it (a detour source in candidate-path construction).
func decode_escapes(string req) int {
  int n = len(req) - escapes_seen * 2;
  if (n < 0) {
    n = 0;
  }
  return n;
}

// count_entities accounts for '&' entities in the request.
func count_entities(string req) int {
  bytes_received = bytes_received + amps_seen;
  return amps_seen;
}

// de_dotdot rejects leading "../" traversal in the URI prefix.
func de_dotdot(string uri) int {
  if (len(uri) >= 2) {
    if (char(uri, 0) == '.') {
      if (char(uri, 1) == '.') {
        return 1;
      }
    }
  }
  return 0;
}

// auth_check models the basic-auth gate (disabled by default).
func auth_check(int required) int {
  if (required == 1) {
    auth_required = 1;
    return 401;
  }
  return 200;
}

// expand_filename normalizes the URI into a filesystem path length.
func expand_filename(string uri) int {
  int n = len(uri);
  if (n > 1024) {
    n = 1024;
  }
  return n;
}

// make_log_entry appends to the access log.
func make_log_entry(int status) int {
  log_entries = log_entries + 1;
  return status;
}

// defang is the fault point: '<' and '>' are expanded to "&lt;"/"&gt;"
// while the string is copied into the fixed 1000-byte dfstr buffer with no
// bounds check; the terminator write overflows once the output reaches
// 1000 bytes.
func defang(string str) int {
  buf dfstr[1000];
  int i = 0;
  int j = 0;
  while (i < len(str)) {
    int c = char(str, i);
    if (c == '<') {
      bufwrite(dfstr, j, '&');
      j = j + 1;
      bufwrite(dfstr, j, 'l');
      j = j + 1;
      bufwrite(dfstr, j, 't');
      j = j + 1;
      bufwrite(dfstr, j, ';');
      j = j + 1;
    } else if (c == '>') {
      bufwrite(dfstr, j, '&');
      j = j + 1;
      bufwrite(dfstr, j, 'g');
      j = j + 1;
      bufwrite(dfstr, j, 't');
      j = j + 1;
      bufwrite(dfstr, j, ';');
      j = j + 1;
    } else {
      bufwrite(dfstr, j, c);
      j = j + 1;
    }
    i = i + 1;
  }
  bufwrite(dfstr, j, 0);
  return j;
}

// send_response writes the (defanged) error/response body.
func send_response(int status, int bodylen) int {
  bytes_sent = bytes_sent + bodylen;
  conn_state = 4;
  return status;
}

// handle_send flushes buffered output.
func handle_send() int {
  conn_state = 5;
  return bytes_sent;
}

// clear_connection tears down per-connection state.
func clear_connection() void {
  conn_state = 0;
  requests_handled = requests_handled + 1;
  return;
}

// handle_request runs one request through parse, checks, defang and
// response.
func handle_request(string req) int {
  httpd_parse_request(req);
  request_uri = req;
  if (escapes_seen > 0) {
    decode_escapes(req);
  }
  if (amps_seen > 0) {
    count_entities(req);
  }
  int traversal = de_dotdot(request_uri);
  int status = auth_check(auth_required);
  if (traversal == 1) {
    status = 400;
  }
  expand_filename(request_uri);
  make_log_entry(status);
  int defanged = defang(request_uri);
  send_response(status, defanged);
  return status;
}

func main() int {
  sockaddr_check(2);
  handle_newconnect(1);
  conn_started = 1;
  tmr_run(5);
  string req = input_string("request");
  handle_read(req);
  method = scan_method(req);
  handle_request(req);
  mime_find_type(request_uri);
  hexit('7');
  handle_send();
  tmr_run(320);
  clear_connection();
  print(requests_handled);
  return 0;
}
`

// Thttpd returns the thttpd evaluation app. Pure symbolic execution fails
// (state explosion in request parsing); StatSym reaches defang through the
// candidate path and the len(str) predicate (§VII-C2).
func Thttpd() *App {
	return &App{
		Name:        "thttpd",
		Description: "web server with the defang() string-replacement buffer overflow (CVE-2003-0899 style)",
		Source:      thttpdSrc,
		Spec: &symexec.InputSpec{
			StrLenMax: map[string]int64{"request": thttpdMaxRequest},
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			// Requests: "GET /<path>" with occasional angle brackets; the
			// defang expansion makes some mid-length requests faulty too.
			var n int
			if rng.Intn(2) == 0 {
				n = rng.Intn(900)
			} else {
				n = 900 + rng.Intn(thttpdMaxRequest-900)
			}
			body := make([]byte, n)
			const chars = "abcdefghij/<>%&"
			for i := range body {
				body[i] = chars[rng.Intn(len(chars))]
			}
			req := "GET /" + string(body)
			if len(req) > thttpdMaxRequest {
				req = req[:thttpdMaxRequest]
			}
			return &interp.Input{Strs: map[string]string{"request": req}}
		},
		VulnFunc:  "defang",
		VulnKind:  interp.FaultBufferOverflow,
		PureFails: true,
	}
}
