package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// billingSrc is a second extension program covering the paper's "integer
// handling errors" vulnerability class (§VII-A): the discount routine's
// reachable assertion fails for percentages above 90, and the tax split
// divides by a user-controlled bucket count. Unlike the four evaluation
// apps, the statistical predicates here are over raw integer values, not
// string lengths — exercising the numeric side of predicate construction
// end to end.
const billingSrc = `
// billing - invoice calculator with integer-handling defects.
global int subtotal = 0;
global int discount_applied = 0;
global int lines_priced = 0;
global int tax_buckets = 4;

// price_line accumulates one line item.
func price_line(int qty, int unit) int {
  int line = qty * unit;
  if (line < 0) {
    line = 0;
  }
  subtotal = subtotal + line;
  lines_priced = lines_priced + 1;
  return line;
}

// apply_discount is fault point #1: percentages above 90 violate the
// internal consistency assertion.
func apply_discount(int percent) int {
  if (percent < 0) {
    return subtotal;
  }
  int off = subtotal * percent / 100;
  subtotal = subtotal - off;
  assert(subtotal * 10 >= off);
  discount_applied = 1;
  return subtotal;
}

// split_tax is fault point #2: a zero bucket count divides by zero.
func split_tax(int buckets) int {
  tax_buckets = buckets;
  int per = subtotal / buckets;
  return per;
}

// round_total rounds to the nearest ten.
func round_total(int v) int {
  int rem = v % 10;
  if (rem >= 5) {
    return v + (10 - rem);
  }
  return v - rem;
}

func main() int {
  int n = input_int("items");
  if (n < 0) {
    n = 0;
  }
  if (n > 8) {
    n = 8;
  }
  int i = 0;
  while (i < n) {
    price_line(i + 1, 100 + i);
    i = i + 1;
  }
  int pct = input_int("discount");
  apply_discount(pct);
  int buckets = input_int("buckets");
  if (buckets < 0) {
    buckets = 1;
  }
  split_tax(buckets);
  print(round_total(subtotal));
  return 0;
}
`

// Billing returns the integer-defect extension app. The assertion in
// apply_discount fires for discount percentages ≥ 91 (given at least one
// priced line), and split_tax divides by zero when buckets == 0.
func Billing() *App {
	return &App{
		Name:        "billing",
		Description: "invoice calculator with an integer-threshold assertion failure and a division by zero",
		Source:      billingSrc,
		Spec: &symexec.InputSpec{
			ConcreteInts: map[string]int64{"buckets": 4},
			IntMin:       -1000,
			IntMax:       1000,
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			return &interp.Input{Ints: map[string]int64{
				"items":    int64(1 + rng.Intn(8)),
				"discount": int64(rng.Intn(120)),
				"buckets":  int64(1 + rng.Intn(6)),
			}}
		},
		VulnFunc:  "apply_discount",
		VulnKind:  interp.FaultAssert,
		PureFails: false,
	}
}
