package apps

import (
	"math/rand"

	"repro/internal/interp"
	"repro/internal/symexec"
)

// CTree symbolic-input sizes.
const (
	ctreeMaxTaint = 300
	ctreeMaxSpec  = 24
)

// ctreeSrc is the MiniC port of CTree (NIST STONESOUP), a tool for
// displaying file-system hierarchies. The STONESOUP-injected vulnerability
// (§VII-C3): an environment variable (the tainted buffer) longer than the
// 64-byte stack buffer overflows it in initlinedraw. The directory-spec
// scanning code branches per character, which blows up pure symbolic
// execution (Table IV: KLEE fails on CTree with memory exhaustion).
const ctreeSrc = `
// ctree - directory hierarchy display (STONESOUP port).
global int opt_numeric = 0;
global int opt_quick = 0;
global int max_depth = 16;
global int nodes_drawn = 0;
global int dirs_seen = 0;
global int files_seen = 0;
global int links_seen = 0;
global string rootdir;
global string stonesoup_tainted_buff;

// parse_args handles the documented -n / -q / -d options; the remaining
// argument names the root directory spec.
func parse_args(int argc) int {
  int i = 0;
  while (i < argc) {
    string opt = arg(i);
    if (opt == "-n") {
      opt_numeric = 1;
      i = i + 1;
    } else if (opt == "-q") {
      opt_quick = 1;
      i = i + 1;
    } else if (opt == "-d") {
      if (i + 1 < argc) {
        max_depth = atoi(arg(i + 1));
        i = i + 2;
      } else {
        i = i + 1;
      }
    } else {
      rootdir = opt;
      i = i + 1;
    }
  }
  return 1;
}

// stonesoup_read_taint ingests the injected taint source from the
// environment (the paper's stonesoup_tainted_buff).
func stonesoup_read_taint() string {
  string t = env("STONESOUP_TAINT_SOURCE");
  stonesoup_tainted_buff = t;
  return t;
}

// classify_entry maps a directory-spec character to an entry kind.
func classify_entry(int c) int {
  if (c == 'd') {
    return 1;
  }
  if (c == 'f') {
    return 2;
  }
  if (c == 'l') {
    return 3;
  }
  return 0;
}

// count_entries scans the directory spec character by character, tallying
// entry kinds. Every character multiplies the symbolic state space.
func count_entries(string spec) int {
  int i = 0;
  while (i < len(spec)) {
    int k = classify_entry(char(spec, i));
    if (k == 1) {
      dirs_seen = dirs_seen + 1;
    } else if (k == 2) {
      files_seen = files_seen + 1;
    } else if (k == 3) {
      links_seen = links_seen + 1;
    } else {
      files_seen = files_seen + 1;
    }
    i = i + 1;
  }
  nodes_drawn = dirs_seen + files_seen + links_seen;
  return nodes_drawn;
}

// normalize_spec canonicalizes the directory spec when numeric sorting is
// requested; only the -n runs traverse it, so it surfaces as a detour.
func normalize_spec(string spec) int {
  int n = len(spec);
  if (n > 16) {
    n = 16;
  }
  if (n > 0) {
    if (char(spec, 0) == '/') {
      n = n - 1;
    }
  }
  return n;
}

// quick_scan is the shallow directory walk used with -q.
func quick_scan(string spec) int {
  int n = len(spec);
  dirs_seen = dirs_seen + 0;
  if (n > max_depth) {
    n = max_depth;
  }
  return n;
}

// full_scan is the deep walk used without -q; exactly one of quick_scan /
// full_scan appears on any run's path.
func full_scan(string spec) int {
  int n = len(spec) * 2;
  if (n > max_depth * 4) {
    n = max_depth * 4;
  }
  files_seen = files_seen + 0;
  return n;
}

// initlinedraw is the fault point: the tainted buffer is copied into a
// fixed 64-byte line-drawing buffer with no bounds check; the terminator
// write overflows once the taint reaches 64 bytes.
func initlinedraw(string tainted) int {
  buf linebuf[64];
  int i = 0;
  while (i < len(tainted)) {
    bufwrite(linebuf, i, char(tainted, i));
    i = i + 1;
  }
  bufwrite(linebuf, i, 0);
  return i;
}

// draw_branch renders one branch row (post-fault drawing logic).
func draw_branch(int depth, int idx) int {
  int width = depth * 2 + idx;
  if (width > 80) {
    width = 80;
  }
  nodes_drawn = nodes_drawn + 1;
  return width;
}

// draw_node renders one node of the requested kind.
func draw_node(int kind, int depth) int {
  int glyph = '+';
  if (kind == 1) {
    glyph = '/';
  }
  if (kind == 3) {
    glyph = '@';
  }
  return draw_branch(depth, glyph);
}

// draw_tree walks the counted entries and renders them.
func draw_tree(int total) int {
  int i = 0;
  int depth = 1;
  while (i < total) {
    draw_node(i - (i / 4) * 4, depth);
    if (depth < max_depth) {
      depth = depth + 1;
    }
    i = i + 1;
  }
  return i;
}

// print_summary reports the tally.
func print_summary() void {
  print(dirs_seen);
  print(files_seen);
  print(links_seen);
  return;
}

func main() int {
  parse_args(nargs());
  string taint = stonesoup_read_taint();
  if (opt_numeric == 1) {
    normalize_spec(rootdir);
  }
  if (opt_quick == 1) {
    quick_scan(rootdir);
  } else {
    full_scan(rootdir);
  }
  int total = count_entries(rootdir);
  int drawn = initlinedraw(taint);
  draw_tree(total);
  if (opt_quick == 0) {
    print_summary();
  }
  print(drawn);
  return 0;
}
`

// CTree returns the CTree evaluation app. Pure symbolic execution explodes
// in the per-character spec scanning and exhausts its state budget;
// StatSym's guidance drives straight to initlinedraw and is the fastest of
// the four case studies (Table II/III).
func CTree() *App {
	return &App{
		Name:        "ctree",
		Description: "directory hierarchy display with a STONESOUP 64-byte stack-buffer overflow",
		Source:      ctreeSrc,
		Spec: &symexec.InputSpec{
			NArgs:        3,
			ConcreteArgs: map[int]string{0: "-n", 1: "-q"},
			StrLenMax: map[string]int64{
				"arg2":                   ctreeMaxSpec,
				"STONESOUP_TAINT_SOURCE": ctreeMaxTaint,
			},
		},
		NewInput: func(rng *rand.Rand) *interp.Input {
			var taintLen int
			if rng.Intn(2) == 0 {
				taintLen = rng.Intn(64) // benign: below the 64-byte buffer
			} else {
				taintLen = 64 + rng.Intn(ctreeMaxTaint-64)
			}
			spec := make([]byte, rng.Intn(ctreeMaxSpec))
			kinds := []byte{'d', 'f', 'l', 'x'}
			for i := range spec {
				spec[i] = kinds[rng.Intn(len(kinds))]
			}
			// Users vary the flags: -n toggles the normalize_spec branch.
			args := []string{string(spec)}
			if rng.Intn(2) == 0 {
				args = append([]string{"-n"}, args...)
			}
			if rng.Intn(2) == 0 {
				args = append([]string{"-q"}, args...)
			}
			return &interp.Input{
				Args: args,
				Env:  map[string]string{"STONESOUP_TAINT_SOURCE": randName(rng, taintLen, false)},
			}
		},
		VulnFunc:  "initlinedraw",
		VulnKind:  interp.FaultBufferOverflow,
		PureFails: true,
	}
}
