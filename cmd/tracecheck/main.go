// Command tracecheck validates artifacts of the pipeline's data plane. For
// a JSONL event trace (the -trace flag of statsym, symexec, or benchtab):
// every line must parse as an obs.Event with a known type, every span must
// open exactly once before it closes, parents must refer to already-opened
// spans, and no span may remain open at end of trace. A flight-recorder
// dump (the -flight flag; first line is a flight.header record) is checked
// with the flight package's structural validator, and a Prometheus
// /metrics scrape (detected by its "# HELP"/"# TYPE" leader) with the
// exposition lint from the live package. For a binary corpus segment
// (*.seg) it verifies magic, trailer, footer checksum, block CRCs, and a
// full record decode against the dictionaries; for a corpus store
// directory it verifies every manifested segment plus the manifest itself.
// Persistent solver-cache artifacts get the same treatment: a directory
// holding a solvercache.json manifest (or a bare *.scq segment) is
// deep-validated — block CRCs, entry decode, per-entry digest and model
// self-consistency, digest ordering, and manifest/footer agreement.
// A checkpoint (*.ssnap) is checked frame-first (single CRC-verified
// checkpoint frame, no trailing bytes) and then fully decoded by resuming
// it; a dispatch audit log (-dispatch-log JSONL, sniffed by its "event"
// field) must hold only known scheduling events and record a merge.
// The statsymd daemon's artifacts are covered too: a job ledger (sniffed
// by its crc+rec framing and statsymd.ledger header) is checked for CRC
// discipline, known states, monotonic per-job transitions, specs on
// admission records, and digests on done records; a saved job-spec JSON
// (kind statsymd.jobspec/v1) is schema-validated; a sharded corpus
// directory (shards.json manifest) has every shard store deep-verified.
// It exits non-zero on the first class of violation found (including a
// truncated segment), so CI can smoke-test every layer with real runs.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/live"
	"repro/internal/service"
	"repro/internal/solver/persist"
	"repro/internal/symexec"
	"repro/internal/symexec/snapshot"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck TRACE.jsonl | FLIGHT-DUMP.jsonl | DISPATCH-LOG.jsonl | METRICS.prom | SEGMENT.seg | CHECKPOINT.ssnap | JOBS.ledger | JOBSPEC.json | STORE-DIR")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	arg := flag.Arg(0)
	var problems []string
	var summary string
	var err error
	if st, serr := os.Stat(arg); serr == nil && st.IsDir() {
		if persist.IsStoreDir(arg) {
			problems, summary, err = checkCacheStore(arg)
		} else if corpus.IsShardedDir(arg) {
			problems, summary, err = checkShardedStore(arg)
		} else {
			problems, summary, err = checkStore(arg)
		}
	} else if strings.HasSuffix(arg, ".ssnap") {
		problems, summary, err = checkCheckpoint(arg)
	} else if strings.HasSuffix(arg, ".seg") {
		problems, summary, err = checkSegment(arg)
	} else if strings.HasSuffix(arg, persist.SegmentSuffix) {
		problems, summary, err = checkCacheSegment(arg)
	} else {
		switch sniff(arg) {
		case "flight":
			problems, summary, err = checkFlight(arg)
		case "metrics":
			problems, summary, err = checkMetrics(arg)
		case "dispatch":
			problems, summary, err = checkDispatchLog(arg)
		case "ledger":
			problems, summary, err = checkLedger(arg)
		case "jobspec":
			problems, summary, err = checkJobSpec(arg)
		default:
			problems, summary, err = check(arg)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Println(summary)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "tracecheck:", p)
		}
		os.Exit(1)
	}
}

// sniff classifies a non-segment file by its first line: a JSON object
// whose type is flight.header is a flight dump; a line starting with "#"
// or a bare Prometheus sample is a /metrics scrape; anything else falls
// through to the JSONL trace checker (whose parser reports precise
// problems for malformed input).
func sniff(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "trace"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return "trace"
	}
	line := bytes.TrimSpace(sc.Bytes())
	if len(line) == 0 {
		return "trace"
	}
	if line[0] == '{' {
		var probe struct {
			Type  string `json:"type"`
			Event string `json:"event"`
			Kind  string `json:"kind"`
			Rec   *struct {
				Type string `json:"type"`
			} `json:"rec"`
		}
		if json.Unmarshal(line, &probe) == nil {
			if probe.Type == flight.TypeHeader {
				return "flight"
			}
			// A dispatch audit log leads with an "event" field instead of
			// an obs event "type".
			if probe.Type == "" && core.KnownDispatchEvents[probe.Event] {
				return "dispatch"
			}
			// A statsymd job ledger wraps records in crc+rec frames; its
			// first record is the typed header.
			if probe.Rec != nil && probe.Rec.Type == service.LedgerType {
				return "ledger"
			}
			// A single-line saved job spec declares its kind inline.
			if probe.Kind == service.SpecKind {
				return "jobspec"
			}
		}
		// A pretty-printed job spec spans lines; probe the whole document.
		if blob, rerr := os.ReadFile(path); rerr == nil && len(blob) < 1<<20 {
			var doc struct {
				Kind string `json:"kind"`
			}
			if json.Unmarshal(blob, &doc) == nil && doc.Kind == service.SpecKind {
				return "jobspec"
			}
		}
		return "trace"
	}
	if line[0] == '#' {
		return "metrics"
	}
	return "trace"
}

// checkLedger validates a statsymd job ledger: crc+rec framing, the typed
// header, known job states, monotonic per-job transitions, specs present
// and valid on admission records, digests on done records.
func checkLedger(path string) (problems []string, summary string, err error) {
	problems, summary, err = service.ValidateLedger(path)
	return problems, "tracecheck: " + path + ": " + summary, err
}

// checkJobSpec validates a saved statsymd job-spec document against the
// same rules the daemon's admission check applies.
func checkJobSpec(path string) (problems []string, summary string, err error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	dec := json.NewDecoder(bytes.NewReader(blob))
	dec.DisallowUnknownFields()
	var spec service.JobSpec
	if jerr := dec.Decode(&spec); jerr != nil {
		problems = append(problems, fmt.Sprintf("spec does not decode: %v", jerr))
	} else {
		if spec.Kind != service.SpecKind {
			problems = append(problems, fmt.Sprintf("kind %q, want %q", spec.Kind, service.SpecKind))
		}
		problems = append(problems, spec.Problems()...)
	}
	summary = fmt.Sprintf("tracecheck: %s: job spec — %d bytes, %d problems", path, len(blob), len(problems))
	return problems, summary, nil
}

// checkShardedStore validates a sharded corpus directory: the shards.json
// manifest plus a deep verify of every shard store.
func checkShardedStore(dir string) (problems []string, summary string, err error) {
	s, err := corpus.OpenSharded(dir)
	if err != nil {
		return nil, "", err
	}
	problems, vsummary, err := s.Verify()
	if err != nil {
		return nil, "", err
	}
	return problems, "tracecheck: " + dir + ": " + vsummary, nil
}

// checkFlight validates a flight-recorder dump.
func checkFlight(path string) (problems []string, summary string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	problems, summary, err = flight.Validate(f)
	return problems, "tracecheck: " + path + ": " + summary, err
}

// checkMetrics lints a Prometheus text exposition scrape.
func checkMetrics(path string) (problems []string, summary string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	problems, families, samples, err := live.LintExposition(f)
	if err != nil {
		return nil, "", err
	}
	summary = fmt.Sprintf("tracecheck: %s: metrics exposition — %d families, %d samples, %d problems",
		path, families, samples, len(problems))
	return problems, summary, nil
}

// checkCheckpoint validates a .ssnap checkpoint file: exactly one
// CRC-verified FrameCheckpoint frame whose payload resumes into an
// executor (the full codec decode, not just the framing).
func checkCheckpoint(path string) (problems []string, summary string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	r := bytes.NewReader(data)
	typ, payload, err := snapshot.ReadFrame(r)
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", path, err)
	}
	if typ != snapshot.FrameCheckpoint {
		problems = append(problems, fmt.Sprintf("leading frame has type %#x, want checkpoint %#x", typ, snapshot.FrameCheckpoint))
	}
	if r.Len() > 0 {
		problems = append(problems, fmt.Sprintf("%d trailing bytes after the checkpoint frame", r.Len()))
	}
	states := 0
	if len(problems) == 0 {
		ex, rerr := symexec.ResumeExecutor(payload, symexec.Options{})
		if rerr != nil {
			problems = append(problems, fmt.Sprintf("checkpoint payload does not decode: %v", rerr))
		} else {
			states = ex.Pending()
		}
	}
	summary = fmt.Sprintf("tracecheck: %s: checkpoint — %d bytes, %d pending states, %d problems",
		path, len(data), states, len(problems))
	return problems, summary, nil
}

// checkDispatchLog validates a coordinator's -dispatch-log JSONL audit
// trail: every line parses as a core.DispatchEvent with a known event name
// and a timestamp, and each run in the file (the log appends across runs)
// ends with exactly one merge line.
func checkDispatchLog(path string) (problems []string, summary string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	flag := func(format string, args ...any) {
		if len(problems) < 20 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}
	lines, merges := 0, 0
	counts := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev core.DispatchEvent
		if jerr := json.Unmarshal(sc.Bytes(), &ev); jerr != nil {
			flag("line %d: not valid JSON: %v", lines, jerr)
			continue
		}
		if !core.KnownDispatchEvents[ev.Event] {
			flag("line %d: unknown dispatch event %q", lines, ev.Event)
			continue
		}
		if ev.T.IsZero() {
			flag("line %d: missing timestamp", lines)
		}
		if ev.Rank < 0 {
			flag("line %d: negative rank %d", lines, ev.Rank)
		}
		counts[ev.Event]++
		if ev.Event == "merge" {
			merges++
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, "", serr
	}
	if merges == 0 {
		flag("no merge line: every completed run must record its merge")
	}
	summary = fmt.Sprintf("tracecheck: %s: dispatch log — %d lines, %d steals, %d local, %d redispatched, %d merges, %d problems",
		path, lines, counts["steal"], counts["local"], counts["redispatch"], merges, len(problems))
	return problems, summary, nil
}

// checkSegment deep-validates one binary corpus segment. A torn segment
// surfaces as an open error (non-zero exit), corruption as problems.
func checkSegment(path string) (problems []string, summary string, err error) {
	rep, err := corpus.VerifySegmentFile(path)
	if err != nil {
		return nil, "", err
	}
	summary = fmt.Sprintf("tracecheck: %s: %d blocks, %d runs, %d records, %d bytes, %d problems",
		path, rep.Blocks, rep.Runs, rep.Records, rep.Bytes, len(rep.Problems))
	return rep.Problems, summary, nil
}

// checkCacheSegment deep-validates one solver-cache segment (*.scq): block
// CRCs, a full entry decode, every entry's self-consistency (stored digest
// vs recomputed, Sat models satisfying their conjunctions), within-block
// digest ordering, and footer agreement.
func checkCacheSegment(path string) (problems []string, summary string, err error) {
	rep, err := persist.VerifySegmentFile(path)
	if err != nil {
		return nil, "", err
	}
	summary = fmt.Sprintf("tracecheck: %s: solver-cache segment — %d blocks, %d entries, %d bytes, %d problems",
		path, rep.Blocks, rep.Entries, rep.Bytes, len(rep.Problems))
	return rep.Problems, summary, nil
}

// checkCacheStore validates a whole solver-cache store directory
// (recognized by its solvercache.json manifest): every manifested segment
// plus manifest/footer consistency and stray-file detection.
func checkCacheStore(dir string) (problems []string, summary string, err error) {
	s, err := persist.Open(dir)
	if err != nil {
		return nil, "", err
	}
	rep, err := s.Verify()
	if err != nil {
		return nil, "", err
	}
	return rep.AllProblems(), "tracecheck: " + dir + ": solver cache — " + rep.Summary(), nil
}

// checkStore validates a whole corpus store directory.
func checkStore(dir string) (problems []string, summary string, err error) {
	s, err := corpus.Open(dir)
	if err != nil {
		return nil, "", err
	}
	rep, err := s.Verify()
	if err != nil {
		return nil, "", err
	}
	return rep.AllProblems(), "tracecheck: " + dir + ": " + rep.Summary(), nil
}

func check(path string) (problems []string, summary string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()

	flag := func(format string, args ...any) {
		if len(problems) < 20 {
			problems = append(problems, fmt.Sprintf(format, args...))
		}
	}

	opened := map[int64]obs.Event{} // still-open spans
	closed := map[int64]bool{}
	counts := map[string]int{}
	lines := 0

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		line := sc.Bytes()
		if len(line) == 0 {
			flag("line %d: empty", lines)
			continue
		}
		var ev obs.Event
		if jerr := json.Unmarshal(line, &ev); jerr != nil {
			flag("line %d: not valid JSON: %v", lines, jerr)
			continue
		}
		counts[ev.Type]++
		if ev.Time.IsZero() {
			flag("line %d: missing timestamp", lines)
		}
		switch ev.Type {
		case obs.EventSpanOpen:
			if ev.Span == 0 {
				flag("line %d: span.open without a span ID", lines)
				continue
			}
			if _, dup := opened[ev.Span]; dup || closed[ev.Span] {
				flag("line %d: span %d opened twice", lines, ev.Span)
			}
			if ev.Parent != 0 {
				if _, ok := opened[ev.Parent]; !ok {
					flag("line %d: span %d has unknown parent %d", lines, ev.Span, ev.Parent)
				}
			}
			opened[ev.Span] = ev
		case obs.EventSpanClose:
			open, ok := opened[ev.Span]
			if !ok {
				flag("line %d: span %d closed without an open", lines, ev.Span)
				continue
			}
			if open.Name != ev.Name {
				flag("line %d: span %d closes as %q but opened as %q", lines, ev.Span, ev.Name, open.Name)
			}
			if ev.DurUS < 0 {
				flag("line %d: span %d has negative duration", lines, ev.Span)
			}
			delete(opened, ev.Span)
			closed[ev.Span] = true
		case obs.EventProgress, obs.EventWarn:
			if ev.Span != 0 && !closed[ev.Span] {
				if _, ok := opened[ev.Span]; !ok {
					flag("line %d: %s on unknown span %d", lines, ev.Type, ev.Span)
				}
			}
		case obs.EventDispatch:
			// Scheduling decisions carry no span; nothing structural to pin.
		default:
			flag("line %d: unknown event type %q", lines, ev.Type)
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, "", serr
	}
	for id, ev := range opened {
		flag("span %d (%s) never closed", id, ev.Name)
	}
	summary = fmt.Sprintf("tracecheck: %s: %d lines — %d span pairs, %d progress, %d warn, %d problems",
		path, lines, counts[obs.EventSpanClose], counts[obs.EventProgress], counts[obs.EventWarn], len(problems))
	return problems, summary, nil
}
