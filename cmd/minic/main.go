// Command minic is the MiniC toolchain driver: run programs concretely,
// disassemble their bytecode, or print their static statistics.
//
//	minic run file.mc [-int name=42] [-str name=value] [-env K=V] [-- argv...]
//	minic disas file.mc
//	minic stats file.mc
//	minic app <name>           # print an evaluation app's source
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/bytecode"
	"repro/internal/interp"
	"repro/internal/minic"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "minic:", err)
		os.Exit(1)
	}
}

type kvList []string

func (k *kvList) String() string     { return strings.Join(*k, ",") }
func (k *kvList) Set(s string) error { *k = append(*k, s); return nil }

func run() error {
	if len(os.Args) < 3 {
		return fmt.Errorf("usage: minic {run|disas|stats} <file.mc> [flags] | minic app <name>")
	}
	cmd, target := os.Args[1], os.Args[2]

	if cmd == "app" {
		app, err := apps.Get(target)
		if err != nil {
			return err
		}
		fmt.Print(app.Source)
		return nil
	}

	srcBytes, err := os.ReadFile(target)
	if err != nil {
		return err
	}
	src := string(srcBytes)

	switch cmd {
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		var ints, strs, envs kvList
		fs.Var(&ints, "int", "int input: name=value (repeatable)")
		fs.Var(&strs, "str", "string input: name=value (repeatable)")
		fs.Var(&envs, "env", "environment variable: name=value (repeatable)")
		maxSteps := fs.Int("max-steps", 0, "step limit (0: default)")
		if err := fs.Parse(os.Args[3:]); err != nil {
			return err
		}
		input := &interp.Input{
			Ints: map[string]int64{},
			Strs: map[string]string{},
			Env:  map[string]string{},
			Args: fs.Args(),
		}
		for _, kv := range ints {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad -int %q", kv)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad -int %q: %v", kv, err)
			}
			input.Ints[k] = n
		}
		for _, kv := range strs {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad -str %q", kv)
			}
			input.Strs[k] = v
		}
		for _, kv := range envs {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("bad -env %q", kv)
			}
			input.Env[k] = v
		}
		prog, err := compile(target, src)
		if err != nil {
			return err
		}
		res, err := interp.Run(prog, input, interp.Config{CollectOutput: true, MaxSteps: *maxSteps})
		if err != nil {
			return err
		}
		for _, line := range res.Output {
			fmt.Println(line)
		}
		if res.Faulty() {
			fmt.Printf("FAULT: %s in %s at %s (after %d steps)\n",
				res.Fault, res.FaultFunc, res.FaultPos, res.Steps)
			os.Exit(2)
		}
		fmt.Printf("exit: %d (%d steps)\n", res.Ret.Int, res.Steps)
		return nil

	case "disas":
		prog, err := compile(target, src)
		if err != nil {
			return err
		}
		fmt.Print(bytecode.DisassembleProgram(prog))
		return nil

	case "stats":
		ast, err := minic.ParseAndCheck(src)
		if err != nil {
			return err
		}
		ast.Name = target
		st := minic.Stats(ast, src)
		fmt.Printf("program:        %s\n", target)
		fmt.Printf("SLOC:           %d\n", st.SLOC)
		fmt.Printf("functions:      %d\n", st.Functions)
		fmt.Printf("external calls: %d\n", st.ExternalCalls)
		fmt.Printf("internal calls: %d\n", st.InternalCalls)
		fmt.Printf("global insts:   %d\n", st.GlobalVars)
		fmt.Printf("param insts:    %d\n", st.Params)
		return nil

	default:
		return fmt.Errorf("unknown command %q (want run, disas, stats, app)", cmd)
	}
}

func compile(name, src string) (*bytecode.Program, error) {
	ast, err := minic.ParseAndCheck(src)
	if err != nil {
		return nil, err
	}
	ast.Name = name
	return bytecode.Compile(ast)
}
