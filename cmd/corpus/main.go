// Command corpus manages segmented on-disk trace stores (internal/corpus)
// — the durable home of monitor logs once corpora outgrow one JSON blob.
//
//	corpus ingest  -dir DIR (-app NAME [-rate R -seed S -runs N] | -from FILE)
//	corpus stats   -dir DIR
//	corpus compact -dir DIR
//	corpus verify  -dir DIR
//
// ingest fills a store either by collecting fresh runs from an evaluation
// app's workload generator or by converting a legacy JSON corpus file;
// stats streams the statistical front-end (predicates, Eq. 1–2) straight
// off the segments and reports scan throughput; compact rewrites
// fragmented stores into full-size segments; verify checksums and decodes
// every block, exiting non-zero on any corruption or torn segment.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "ingest":
		err = cmdIngest(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "corpus: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corpus:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  corpus ingest  -dir DIR (-app NAME [-rate R -seed S -runs N] | -from FILE)
  corpus stats   -dir DIR [-top N]
  corpus compact -dir DIR
  corpus verify  -dir DIR`)
}

func cmdIngest(args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory (created if missing)")
	appName := fs.String("app", "", "collect runs from this evaluation app's workload generator")
	from := fs.String("from", "", "ingest a legacy JSON corpus file (from cmd/monitor) instead of collecting")
	rate := fs.Float64("rate", 0.3, "per-event log sampling rate (with -app)")
	seed := fs.Int64("seed", 1, "workload and sampling seed (with -app)")
	runs := fs.Int("runs", workload.DefaultRuns, "correct and faulty runs to collect, each (with -app)")
	blockKB := fs.Int("block-kb", 0, "raw block size in KiB (0: default)")
	segMB := fs.Int("segment-mb", 0, "compressed segment roll size in MiB (0: default)")
	fs.Parse(args)
	if *dir == "" || (*appName == "") == (*from == "") {
		return fmt.Errorf("ingest needs -dir and exactly one of -app or -from")
	}
	wopts := corpus.Options{BlockBytes: *blockKB << 10, SegmentBytes: int64(*segMB) << 20}
	start := time.Now()

	if *from != "" {
		c, err := trace.ReadFile(*from)
		if err != nil {
			return err
		}
		s, err := corpus.Create(*dir, c.Program)
		if err != nil {
			return err
		}
		w := s.NewWriter(wopts)
		for i := range c.Runs {
			if err := w.Append(&c.Runs[i]); err != nil {
				return err
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
		report(s, fmt.Sprintf("ingested %s", *from), w.SealedBytes(), start)
		return nil
	}

	app, err := apps.Get(*appName)
	if err != nil {
		return err
	}
	s, err := corpus.Create(*dir, app.Name)
	if err != nil {
		return err
	}
	before := s.TotalBytes()
	err = workload.BuildCorpusStoreCtx(context.Background(), app, workload.Options{
		SampleRate: *rate, Seed: *seed, Correct: *runs, Faulty: *runs,
	}, s, wopts)
	if err != nil {
		return err
	}
	report(s, fmt.Sprintf("collected from %s", app.Name), s.TotalBytes()-before, start)
	return nil
}

func report(s *corpus.Store, what string, bytes int64, start time.Time) {
	elapsed := time.Since(start)
	mbs := float64(bytes) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("%s -> %s: %d runs, %d segments, %d bytes in %v (%.1f MB/s)\n",
		what, s.Dir(), s.TotalRuns(), len(s.Segments()), s.TotalBytes(),
		elapsed.Round(time.Millisecond), mbs)
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	top := fs.Int("top", 10, "predicates to print")
	maxDistinct := fs.Int("max-distinct", 0, "per-variable sketch cap before exact fallback (0: default)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("stats needs -dir")
	}
	s, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	nR, nL, nV, err := s.Counts()
	if err != nil {
		return err
	}
	fmt.Printf("store %s (%s): %d runs, %d locations, %d variables, %d bytes in %d segments\n",
		*dir, s.Program(), nR, nL, nV, s.TotalBytes(), len(s.Segments()))

	start := time.Now()
	it := s.Iter()
	a, err := stats.AnalyzeStream(context.Background(), it, stats.StreamOpts{MaxDistinct: *maxDistinct})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	scanned := it.ScannedBytes()
	it.Close()
	mbs := float64(scanned) / (1 << 20) / elapsed.Seconds()
	fmt.Printf("streaming analysis: %d predicates in %v (scanned %d compressed bytes, %.1f MB/s, peak block %d B)\n",
		len(a.Predicates), elapsed.Round(time.Millisecond), scanned, mbs, it.MaxBlockBytes())
	for i, p := range a.Top(*top) {
		fmt.Printf("  P%-2d %-45s @ %s (score %.3f, E=%d, %d/%d samples)\n",
			i+1, p.String(), p.Loc, p.Score, p.Err, p.CountC, p.CountF)
	}
	return nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	blockKB := fs.Int("block-kb", 0, "raw block size in KiB for rewritten segments (0: default)")
	segMB := fs.Int("segment-mb", 0, "compressed segment roll size in MiB (0: default)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("compact needs -dir")
	}
	s, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := s.Compact(corpus.Options{BlockBytes: *blockKB << 10, SegmentBytes: int64(*segMB) << 20})
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s: %d -> %d segments, %d -> %d bytes, %d runs in %v\n",
		*dir, res.SegmentsBefore, res.SegmentsAfter, res.BytesBefore, res.BytesAfter,
		res.Runs, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "store directory")
	scan := fs.Bool("scan", true, "also time a full streaming scan of every run")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("verify needs -dir")
	}
	s, err := corpus.Open(*dir)
	if err != nil {
		return err
	}
	rep, err := s.Verify()
	if err != nil {
		return err
	}
	fmt.Printf("verify %s: %s\n", *dir, rep.Summary())
	if !rep.OK() {
		for _, p := range rep.AllProblems() {
			fmt.Fprintln(os.Stderr, "corpus:", p)
		}
		return fmt.Errorf("store failed verification")
	}
	if *scan {
		start := time.Now()
		it := s.Iter()
		n := 0
		for {
			_, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			n++
		}
		elapsed := time.Since(start)
		mbs := float64(it.ScannedBytes()) / (1 << 20) / elapsed.Seconds()
		it.Close()
		fmt.Printf("scan: %d runs, %d compressed bytes in %v (%.1f MB/s)\n",
			n, it.ScannedBytes(), elapsed.Round(time.Millisecond), mbs)
	}
	return nil
}
