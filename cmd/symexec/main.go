// Command symexec runs pure (unguided) symbolic execution — the KLEE
// baseline — on one of the evaluation applications or an arbitrary MiniC
// source file, with a selectable state scheduler.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/live"
	"repro/internal/solver"
	"repro/internal/solver/persist"
	"repro/internal/summary"
	"repro/internal/symexec"
	"repro/internal/symexec/snapshot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "symexec:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName   = flag.String("app", "", "app: polymorph, ctree, thttpd, grep, msgtool, billing")
		file      = flag.String("file", "", "MiniC source file to analyze instead of -app")
		schedName = flag.String("sched", "bfs", "scheduler: bfs, dfs, random, coverage")
		seed      = flag.Int64("seed", 1, "seed for the random scheduler")
		maxStates = flag.Int("max-states", 0, "live-state budget (0: default)")
		maxSteps  = flag.Int64("max-steps", 0, "instruction budget (0: default)")
		timeout   = flag.Duration("timeout", 60*time.Second, "wall-clock bound")
		maxStr    = flag.Int64("max-str", 0, "symbolic string length bound for -file runs (0: default)")
		all       = flag.Bool("all", false, "keep searching after the first vulnerability")
		replay    = flag.String("replay", "", "seed exploration with a witness input (JSON, from statsym -witness-out)")
		cov       = flag.Bool("cov", false, "report instruction coverage after the run")
		fastPaths = flag.Bool("fast-paths", false, "enable heuristic solver-cache shortcuts (UNSAT-core subsumption, Sat-model reuse); may change exploration")
		cacheDir  = flag.String("cache-dir", "", "persist solver-cache verdicts across runs in this directory (verified on load; wall-clock only)")
		scope     = flag.String("scope", "", "interpretation scope policy: \"\" or \"all\" interprets everything; \"all,-f,-g\" havocs f and g; \"f,g\" interprets exactly that list plus main")
		summaries = flag.Bool("summaries", false, "replace summarizable in-scope calls by memoized path summaries")
		workers   = flag.Int("workers", 0, "frontier workers (0: sequential engine; >=1: deterministic epoch engine, results independent of the count)")
		freeRun   = flag.Bool("free-run", false, "with -workers > 1, drop the deterministic epoch barrier (maximum throughput, nondeterministic counters)")
		traceOut  = flag.String("trace", "", "stream a JSONL event trace (spans, progress) to this file")
		traceInt  = flag.Duration("trace-interval", time.Second, "progress-snapshot period for -trace")
		metrics   = flag.Bool("metrics", false, "print the metrics registry at exit")
		listen    = flag.String("listen", "", "serve live introspection (/metrics, /progress, /spans, pprof) on this address (e.g. localhost:6060)")
		pprofAddr = flag.String("pprof", "", "deprecated alias for -listen (pprof rides the same mux)")
		flightOut = flag.String("flight", "", "dump the flight-recorder ring (JSONL) to this file on fault, panic, or interrupt")
		flightN   = flag.Int("flight-depth", flight.DefaultDepth, "flight-recorder events retained per category")

		serveWorker = flag.String("serve-worker", "", "run as a dispatch worker on this address (unix:/path or host:port), executing attempt and frontier-shard units until interrupted")
		ckptOut     = flag.String("checkpoint-out", "", "write the end-of-run frontier to this .ssnap file (sequential engine only)")
		resumePath  = flag.String("resume", "", "resume exploration from a .ssnap checkpoint instead of -app/-file")
		dispatchRun = flag.Bool("dispatch", false, "after a bounded local warmup, shard the remaining frontier across -worker-addrs (shards that fail to ship re-run locally)")
		workerAddrs = flag.String("worker-addrs", "", "comma-separated dispatch worker addresses for -dispatch")
		warmupSteps = flag.Int64("warmup-steps", 5000, "local instruction budget before sharding under -dispatch")
	)
	flag.Parse()

	if *serveWorker != "" {
		return runServeWorker(*serveWorker, *cacheDir, live.Options{
			Binary: "symexec",
			Listen: *listen, Pprof: *pprofAddr,
			Trace: *traceOut, Interval: *traceInt, Metrics: *metrics,
			Flight: *flightOut, FlightDepth: *flightN,
		})
	}

	var prog *bytecode.Program
	var spec *symexec.InputSpec
	var resumeBlob []byte
	switch {
	case *resumePath != "":
		blob, err := symexec.ReadCheckpointFile(*resumePath)
		if err != nil {
			return err
		}
		resumeBlob = blob
		// Peek the program out of the checkpoint so the span, persistent
		// cache, and coverage report see the right binary; ResumeExecutor
		// re-decodes the full blob with the final options below.
		r := snapshot.NewReader(blob)
		if _, err := r.Uvarint(); err != nil {
			return err
		}
		if prog, err = snapshot.DecodeProgram(r); err != nil {
			return err
		}
	case *appName != "":
		app, err := apps.Get(*appName)
		if err != nil {
			return err
		}
		prog = app.Program()
		spec = app.Spec
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		prog = bytecode.MustCompile(*file, string(src))
		spec = &symexec.InputSpec{MaxStrLen: *maxStr}
	default:
		return fmt.Errorf("one of -app, -file, or -resume is required")
	}

	if *replay != "" {
		seed, err := interp.LoadInput(*replay)
		if err != nil {
			return err
		}
		// Copy the spec so the app registry's shared instance stays clean.
		seeded := *spec
		seeded.SeedInput = seed
		spec = &seeded
		fmt.Printf("seeding exploration with %s\n", *replay)
	}

	opts := symexec.DefaultOptions()
	opts.StopAtFirstVuln = !*all
	opts.Timeout = *timeout
	opts.SolverFastPaths = *fastPaths
	callMode := symexec.CallInterpret
	switch {
	case *summaries:
		callMode = symexec.CallSummarize
	case *scope != "" && *scope != "all":
		callMode = symexec.CallHavoc
	}
	if callMode != symexec.CallInterpret {
		pol, err := summary.ParsePolicy(*scope)
		if err != nil {
			return err
		}
		opts.Calls, err = symexec.NewCallStrategy(prog, callMode, pol, nil)
		if err != nil {
			return err
		}
	}
	opts.Workers = *workers
	opts.FreeRun = *freeRun
	if *freeRun && *workers <= 1 {
		return fmt.Errorf("-free-run requires -workers > 1")
	}
	if *maxStates > 0 {
		opts.MaxStates = *maxStates
	}
	if *maxSteps > 0 {
		opts.MaxSteps = *maxSteps
	}
	switch *schedName {
	case "bfs":
		opts.Sched = symexec.NewBFS()
	case "dfs":
		opts.Sched = symexec.NewDFS()
	case "random":
		opts.Sched = symexec.NewRandom(*seed)
	case "coverage":
		opts.Sched = symexec.NewCoverage()
	default:
		return fmt.Errorf("unknown scheduler %q", *schedName)
	}

	// SIGINT/SIGTERM stop exploration cooperatively; the partial result
	// (paths, coverage, any vulnerabilities found so far) is still printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := live.Init(live.Options{
		Binary: "symexec",
		Listen: *listen, Pprof: *pprofAddr,
		Trace: *traceOut, Interval: *traceInt, Metrics: *metrics,
		Flight: *flightOut, FlightDepth: *flightN,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "symexec: obs:", err)
		}
	}()
	defer rt.DumpOnPanic()
	if o := rt.Obs(); o != nil {
		ctx = rt.Context(ctx)
		var span *obs.Span
		ctx, span = obs.StartSpan(ctx, "symexec",
			obs.A("program", prog.Name), obs.A("sched", opts.Sched.Name()))
		defer span.End()
		if *metrics {
			defer func() { fmt.Print(o.Metrics.Format()) }()
		}
	}

	// A persistent cache dir gives this run a shared cache as the store's
	// in-memory face: prior verdicts are verified and seeded before the
	// run, fresh ones spill behind the solver's hot path.
	var session *persist.Session
	if *cacheDir != "" {
		shared := solver.NewSharedCache(0)
		opts.SharedCache = shared
		opts.OriginHashes = summary.HashProgram(prog)
		session, err = persist.Attach(persist.Config{
			Dir: *cacheDir, Program: prog, Shared: shared, Obs: rt.Obs(),
		})
		if err != nil {
			return err
		}
	}

	var ex *symexec.Executor
	var res *symexec.Result
	switch {
	case *resumePath != "":
		ex, err = symexec.ResumeExecutor(resumeBlob, opts)
		if err != nil {
			return err
		}
		res = ex.RunContext(ctx)
	case *dispatchRun:
		addrs := splitAddrs(*workerAddrs)
		ex, res, err = runDispatchPure(ctx, prog, spec, opts, addrs, *warmupSteps)
		if err != nil {
			return err
		}
	default:
		ex = symexec.New(prog, spec, opts)
		res = ex.RunContext(ctx)
	}
	if *ckptOut != "" {
		blob, err := ex.EncodeCheckpoint()
		if err != nil {
			return fmt.Errorf("checkpoint: %w", err)
		}
		if err := symexec.WriteCheckpointFile(*ckptOut, blob); err != nil {
			return err
		}
		fmt.Printf("checkpoint: wrote %s (%d bytes)\n", *ckptOut, len(blob))
	}
	if session != nil {
		if err := session.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "symexec: solver cache:", err)
		}
		st := session.Stats()
		fmt.Printf("persist: loaded=%d warm-hits=%d spilled=%d rejected=%d invalidated=%d\n",
			st.Loaded, session.PersistHits(), st.Spilled, st.Rejected, st.Invalidated)
	}
	if res.Found() {
		rt.NoteFault()
	}
	fmt.Printf("scheduler=%s paths=%d states=%d forks=%d steps=%d solver-checks=%d elapsed=%v\n",
		opts.Sched.Name(), res.Paths, res.StatesCreated, res.Forks, res.Steps,
		res.SolverChecks, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("solver-cache: hits=%d misses=%d fast-sat=%d fast-unsat=%d evictions=%d solver-time=%v\n",
		res.CacheHits, res.CacheMisses, res.CacheFastSat, res.CacheFastUnsat,
		res.CacheEvictions, res.SolverTime.Round(time.Millisecond))
	if *cov {
		fmt.Printf("coverage: %.1f%% of instructions\n", ex.TotalCoverage()*100)
		byFunc := ex.Coverage()
		names := make([]string, 0, len(byFunc))
		for name := range byFunc {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %-24s %.1f%%\n", name, byFunc[name]*100)
		}
	}
	switch {
	case res.Exhausted:
		fmt.Println("status: FAILED (state budget exhausted — memory overrun)")
	case res.StepLimited:
		fmt.Println("status: FAILED (instruction budget exhausted)")
	case res.TimedOut:
		fmt.Println("status: FAILED (timed out)")
	case res.Cancelled:
		fmt.Println("status: interrupted (partial results)")
	default:
		fmt.Println("status: completed")
	}
	if len(res.Vulns) == 0 {
		fmt.Println("no vulnerabilities found")
		return nil
	}
	for i, v := range res.Vulns {
		fmt.Printf("vulnerability %d: %s in %s at %s\n", i+1, v.Kind, v.Func, v.Pos)
		fmt.Println("  path:")
		for _, loc := range v.Path {
			fmt.Printf("    %s\n", loc)
		}
		fmt.Printf("  constraints (%d):\n", len(v.Constraints))
		limit := len(v.Constraints)
		if limit > 12 {
			limit = 12
		}
		for _, c := range v.Constraints[:limit] {
			fmt.Printf("    %s\n", c.String(ex.Table))
		}
		if len(v.Constraints) > limit {
			fmt.Printf("    ... (%d more)\n", len(v.Constraints)-limit)
		}
		if v.Witness != nil {
			fmt.Println("  witness:")
			for k, val := range v.Witness.Ints {
				fmt.Printf("    int %s = %d\n", k, val)
			}
			for k, val := range v.Witness.Strs {
				fmt.Printf("    string %s = %s\n", k, trunc(val))
			}
			for k, val := range v.Witness.Env {
				fmt.Printf("    env %s = %s\n", k, trunc(val))
			}
			if len(v.Witness.Args) > 0 {
				fmt.Printf("    args =")
				for _, a := range v.Witness.Args {
					fmt.Printf(" %s", trunc(a))
				}
				fmt.Println()
			}
		}
	}
	return nil
}

// runServeWorker turns this process into a dispatch worker: it serves
// candidate-attempt and frontier-shard units on addr until interrupted.
// With -cache-dir the worker warms from (and spills to) the same
// persistent solver-cache store as the coordinator.
func runServeWorker(addr, cacheDir string, lopts live.Options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt, err := live.Init(lopts)
	if err != nil {
		return err
	}
	defer func() {
		if err := rt.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "symexec: obs:", err)
		}
	}()
	defer rt.DumpOnPanic()
	l, err := dispatch.Listen(addr)
	if err != nil {
		return err
	}
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	fmt.Printf("worker: serving dispatch units on %s\n", addr)
	err = dispatch.Serve(l, core.NewDispatchRunner(core.WorkerConfig{CacheDir: cacheDir, Obs: rt.Obs()}))
	if ctx.Err() != nil {
		return nil // interrupted: the closed listener is a clean shutdown
	}
	return err
}

// splitAddrs parses a comma-separated -worker-addrs value.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// runDispatchPure distributes a pure-mode exploration: a bounded local
// warmup builds a frontier, EncodeFrontierShards splits it 1+len(addrs)
// ways, one shard runs locally while the rest ship to the workers as
// FrameStateUnit units, and the results merge in shard order. Every shard
// runs under the run's full step/state budget, so the merged totals equal
// the undivided run's (the shard-union invariant pinned in
// internal/symexec). A shard whose worker fails re-runs locally: workers
// cost speed, never detections. StopAtFirstVuln is forced off — shards
// explore independently, so the run behaves like -all.
func runDispatchPure(ctx context.Context, prog *bytecode.Program, spec *symexec.InputSpec, opts symexec.Options, addrs []string, warmup int64) (*symexec.Executor, *symexec.Result, error) {
	if opts.Workers > 0 || opts.Calls != nil {
		return nil, nil, fmt.Errorf("-dispatch requires the sequential pure engine (no -workers, -scope, -summaries)")
	}
	full := opts
	if full.MaxSteps == 0 {
		full.MaxSteps = symexec.DefaultMaxSteps
	}
	if full.MaxStates == 0 {
		full.MaxStates = symexec.DefaultMaxStates
	}
	full.StopAtFirstVuln = false
	warmOpts := full
	if warmup > 0 && warmup < full.MaxSteps {
		warmOpts.MaxSteps = warmup
	}
	ex := symexec.New(prog, spec, warmOpts)
	res := ex.RunContext(ctx)
	if !res.StepLimited || warmOpts.MaxSteps == full.MaxSteps || ctx.Err() != nil {
		// Finished, hit a real limit, or interrupted before the warmup
		// boundary: nothing left to distribute.
		return ex, res, nil
	}
	res.StepLimited = false // the warmup boundary is internal, not a verdict

	n := 1 + len(addrs)
	shards, err := ex.EncodeFrontierShards(n)
	if err != nil {
		return nil, nil, fmt.Errorf("shard frontier: %w", err)
	}
	units := make([]*symexec.StateUnit, n)
	for i, blob := range shards {
		units[i] = &symexec.StateUnit{MaxSteps: full.MaxSteps, MaxStates: full.MaxStates, Blob: blob}
	}
	results := make([]*symexec.StateResult, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			r, err := shipStateUnit(addr, units[i])
			if err != nil {
				fmt.Fprintf(os.Stderr, "symexec: worker %s failed (%v); running shard %d locally\n", addr, err, i)
				if r, err = symexec.RunStateUnit(ctx, units[i]); err != nil {
					fmt.Fprintf(os.Stderr, "symexec: shard %d: %v\n", i, err)
					return
				}
			}
			results[i] = r
		}(i, addrs[i-1])
	}
	if results[0], err = symexec.RunStateUnit(ctx, units[0]); err != nil {
		return nil, nil, err
	}
	wg.Wait()

	remote := 0
	for i, r := range results {
		if r == nil {
			continue
		}
		if i > 0 {
			remote++
		}
		res.Paths += r.Paths
		res.StatesCreated += r.StatesCreated
		res.Steps += r.Steps
		res.Forks += r.Forks
		res.SolverChecks += r.SolverChecks
		res.SolverSat += r.SolverSat
		res.SolverUnsat += r.SolverUnsat
		res.Exhausted = res.Exhausted || r.Exhausted
		res.StepLimited = res.StepLimited || r.StepLimited
		res.Vulns = append(res.Vulns, r.Vulns...)
	}
	fmt.Printf("dispatch: %d shards (%d local, %d remote-capable workers)\n", n, n-remote, len(addrs))
	return ex, res, nil
}

// shipStateUnit sends one frontier shard to a worker and decodes its
// result.
func shipStateUnit(addr string, u *symexec.StateUnit) (*symexec.StateResult, error) {
	c, err := dispatch.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	reply, err := c.Do(snapshot.FrameStateUnit, symexec.EncodeStateUnit(u), 0)
	if err != nil {
		return nil, err
	}
	return symexec.DecodeStateResult(reply)
}

func trunc(s string) string {
	if len(s) <= 40 {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%q... (%d bytes)", s[:24], len(s))
}
