// Command statsymd is the resident analysis daemon: it accepts StatSym
// analysis jobs over HTTP (app + corpus reference + budgets as a JSON job
// spec), runs them through the exact pipeline the statsym CLI uses — same
// report, same detection digest — on a bounded queue with per-tenant fair
// scheduling, and streams per-job progress over SSE. Corpora can be
// streamed in ahead of time (POST /v1/corpora/{name}/runs) into sharded
// crash-safe segment stores and referenced by name from job specs.
//
// Jobs survive the daemon: every state transition lands in an append-only
// CRC-checked ledger, so a crashed or drained daemon requeues interrupted
// jobs on restart. SIGTERM drains gracefully — admission stops, in-flight
// jobs get -drain-timeout to finish before being interrupted, and the
// ledger is compacted and sealed.
//
// The introspection endpoints (/metrics, /progress, /spans, pprof) ride
// the same listener as the /v1 API.
//
//	statsymd -listen 127.0.0.1:7077 -data /var/lib/statsymd
//	statsymd loadtest -addr http://127.0.0.1:7077 -jobs 25
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs/flight"
	"repro/internal/obs/live"
	"repro/internal/service"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadtest" {
		if err := loadtest(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "statsymd loadtest:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "statsymd:", err)
		os.Exit(1)
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("statsymd", flag.ExitOnError)
	var (
		listen    = fs.String("listen", "127.0.0.1:7077", "HTTP address for the /v1 API and introspection endpoints")
		dataDir   = fs.String("data", "statsymd-data", "data directory (job ledger + named corpora)")
		slots     = fs.Int("queue-slots", 32, "bounded queue capacity; a full queue answers 429 + Retry-After")
		runners   = fs.Int("runners", 2, "concurrent job runners")
		drainTmo  = fs.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain lets in-flight jobs finish before interrupting them")
		workerStr = fs.String("dispatch", "", "comma-separated dispatch worker addresses (unix:/path or tcp:host:port); jobs submitted with dispatch=true verify candidates on this pool")
		unitDl    = fs.Duration("unit-deadline", 0, "per-unit dispatch round-trip deadline (0: default)")
		dispLog   = fs.String("dispatch-log", "", "append a JSONL audit trail of dispatch scheduling decisions to this file")
		cacheDir  = fs.String("cache-dir", "", "persistent solver-cache directory shared by all jobs (wall-clock only)")
		shards    = fs.Int("shards", 0, "shard fan-out for newly created named corpora (0: default)")
		traceOut  = fs.String("trace", "", "stream a JSONL event trace (all jobs interleaved) to this file")
		traceInt  = fs.Duration("trace-interval", time.Second, "progress-snapshot period")
		flightOut = fs.String("flight", "", "dump the flight-recorder ring (JSONL) to this file on panic or drain")
		flightN   = fs.Int("flight-depth", flight.DefaultDepth, "flight-recorder events retained per category")
	)
	fs.Parse(args)
	if *listen == "" {
		return fmt.Errorf("-listen must not be empty (the daemon is its API)")
	}

	svc, err := service.New(service.Config{
		DataDir:      *dataDir,
		QueueSlots:   *slots,
		Runners:      *runners,
		DrainTimeout: *drainTmo,
		WorkerAddrs:  splitAddrs(*workerStr),
		UnitDeadline: *unitDl,
		DispatchLog:  *dispLog,
		CacheDir:     *cacheDir,
		Shards:       *shards,
	})
	if err != nil {
		return err
	}

	rt, err := live.Init(live.Options{
		Binary: "statsymd",
		Listen: *listen,
		Trace:  *traceOut, Interval: *traceInt, Metrics: true,
		Flight: *flightOut, FlightDepth: *flightN,
		ForceHub: true,
		Mounts:   map[string]http.Handler{"/v1/": svc.Handler()},
	})
	if err != nil {
		return err
	}
	defer rt.DumpOnPanic()

	if err := svc.Start(rt.Obs()); err != nil {
		return err
	}
	if n := len(svc.Recovered()); n > 0 {
		fmt.Printf("statsymd: recovered %d interrupted job(s) from the ledger\n", n)
	}
	fmt.Printf("statsymd: serving jobs on http://%s/v1/ (data in %s, %d runners, %d queue slots)\n",
		rt.Addr(), *dataDir, *runners, *slots)

	// SIGINT/SIGTERM start the graceful drain; a second signal kills the
	// process the hard way (the ledger makes that recoverable too).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop()
	fmt.Printf("statsymd: draining (up to %v for in-flight jobs)\n", *drainTmo)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTmo)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "statsymd: drain:", err)
	}
	if err := rt.Shutdown(context.Background()); err != nil {
		fmt.Fprintln(os.Stderr, "statsymd: obs:", err)
	}
	fmt.Println("statsymd: drained")
	return nil
}

func loadtest(args []string) error {
	fs := flag.NewFlagSet("statsymd loadtest", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:7077", "daemon base URL")
		jobs    = fs.Int("jobs", 25, "total jobs to submit")
		tenants = fs.Int("tenants", 5, "synthetic tenants to spread jobs over")
		conc    = fs.Int("concurrency", 8, "concurrent submitting clients")
		app     = fs.String("app", "polymorph", "application every job analyzes")
		streams = fs.Int("ingest-streams", 2, "concurrent corpus-ingestion streams alongside the job load (0: none)")
		inRuns  = fs.Int("ingest-runs", 50, "runs per ingestion stream")
		timeout = fs.Duration("timeout", 5*time.Minute, "overall load-test budget")
		seed    = fs.Int64("seed", 1, "synthetic corpus seed")
	)
	fs.Parse(args)

	rep, err := service.RunLoadTest(service.LoadOptions{
		BaseURL:       *addr,
		Jobs:          *jobs,
		Tenants:       *tenants,
		Concurrency:   *conc,
		App:           *app,
		IngestStreams: *streams,
		IngestRuns:    *inRuns,
		Timeout:       *timeout,
		Seed:          *seed,
	})
	if rep != nil {
		fmt.Print(service.FormatLoadReport(rep))
	}
	return err
}

// splitAddrs parses a comma-separated -dispatch value.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}
