// Command benchtab regenerates the paper's evaluation tables and figures
// from this reproduction. Without flags it runs everything; -table and
// -figure select individual artifacts; -ablation runs the design-choice
// ablations from DESIGN.md. -baseline compares this machine's ablation
// rows against a recorded ledger (or a legacy BENCH_pr*.json) and exits
// nonzero on regression; -ledger-out records the current rows for use as
// a future baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs/flight"
	"repro/internal/obs/live"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

// ablationTitles names the AblationRow-producing experiments; the corpus
// ablation has its own row type and is dispatched separately.
var ablationTitles = map[string]string{
	"scheduler":   "ABLATION: schedulers vs StatSym guidance",
	"guidance":    "ABLATION: guidance mechanisms (inter/intra)",
	"tau":         "ABLATION: hop threshold τ (thttpd)",
	"cache":       "ABLATION: solver query cache (polymorph, pure)",
	"frontier":    "ABLATION: frontier worker scaling (guided + pure)",
	"summaries":   "ABLATION: call interpretation vs memoized summaries",
	"solvercache": "ABLATION: persistent solver cache (cold / warm / warm-after-edit)",
	"dispatch":    "ABLATION: dispatch backend (sequential vs local vs 1/2/4 workers, min-of-3)",
}

// runAblation dispatches one AblationRow-producing ablation by name.
func runAblation(ctx context.Context, name string, seed int64, budgets bench.Budgets) ([]bench.AblationRow, error) {
	switch name {
	case "scheduler":
		return bench.AblationScheduler(ctx, seed, budgets)
	case "guidance":
		return bench.AblationGuidance(ctx, seed, budgets)
	case "tau":
		return bench.AblationTau(ctx, "thttpd", nil, seed, budgets)
	case "cache":
		return bench.AblationSolverCache(ctx, budgets)
	case "frontier":
		return bench.AblationFrontier(ctx, nil, seed, budgets)
	case "summaries":
		return bench.AblationSummaries(ctx, seed, budgets)
	case "solvercache":
		return bench.AblationSolverCachePersist(ctx, seed, budgets)
	case "dispatch":
		return bench.AblationDispatch(ctx, nil, seed, budgets)
	default:
		return nil, fmt.Errorf("unknown ablation %q", name)
	}
}

func run() error {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
		figure    = flag.Int("figure", 0, "regenerate one figure (7-10); 0 = all")
		ablation  = flag.String("ablation", "", "run an ablation: scheduler, guidance, tau, cache, frontier, corpus, summaries, solvercache, dispatch, all")
		corpusDir = flag.String("corpus-dir", "", "directory for the corpus ablation's on-disk artifacts (default: temp, discarded)")
		cacheDir  = flag.String("cache-dir", "", "persistent solver-cache root for guided pipeline runs and the solvercache ablation (default: temp, discarded)")
		seed      = flag.Int64("seed", bench.DefaultSeed, "workload seed")
		parallel  = flag.Int("parallel", 1, "candidate-verification workers per pipeline run (1: sequential)")
		workers   = flag.Int("workers", 0, "in-candidate frontier workers per symbolic execution (0: sequential engine)")
		sharedCch = flag.Bool("shared-cache", true, "share solver verdicts across candidate verifications (wall-clock only; counters are unaffected)")
		scope     = flag.String("scope", "", "interpretation scope policy for guided runs (e.g. \"all\" or \"all,-logmsg\"); empty = everything in scope")
		summaries = flag.Bool("summaries", false, "replace summarizable in-scope calls by memoized path summaries in every guided pipeline run")
		only      = flag.Bool("only", false, "run only the selected table/figure")
		asJSON    = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		baseline  = flag.String("baseline", "", "regression gate: re-run the ablations recorded in this ledger (or legacy BENCH_pr*.json), compare row by row, exit nonzero on regression")
		ledgerOut = flag.String("ledger-out", "", "write the ablation rows produced by this run as a ledger (future -baseline input)")
		tolSteps  = flag.Float64("tol-steps", bench.DefaultTolerances().StepsPct, "allowed fractional step-count increase over the baseline (0.10 = +10%)")
		tolTime   = flag.Float64("tol-time", 0, "flag sym time above baseline×ratio (0: wall clock not gated — it jitters across machines)")
		traceOut  = flag.String("trace", "", "stream a JSONL event trace of every pipeline run to this file")
		traceInt  = flag.Duration("trace-interval", time.Second, "progress-snapshot period for -trace")
		metrics   = flag.Bool("metrics", false, "print the accumulated metrics registry at exit")
		listen    = flag.String("listen", "", "serve live introspection (/metrics, /progress, /spans, pprof) on this address (e.g. localhost:6060)")
		pprofAddr = flag.String("pprof", "", "deprecated alias for -listen (pprof rides the same mux)")
		flightOut = flag.String("flight", "", "dump the flight-recorder ring (JSONL) to this file on fault, panic, or interrupt")
		flightN   = flag.Int("flight-depth", flight.DefaultDepth, "flight-recorder events retained per category")
	)
	flag.Parse()
	budgets := bench.DefaultBudgets()
	budgets.Parallel = *parallel
	budgets.Workers = *workers
	budgets.DisableSharedCache = !*sharedCch
	budgets.Scope = *scope
	budgets.Summaries = *summaries
	budgets.CacheDir = *cacheDir

	// SIGINT/SIGTERM cancel the in-flight experiment cooperatively; the
	// partial rows computed so far are discarded, but the process exits
	// cleanly instead of being killed mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := live.Init(live.Options{
		Binary: "benchtab",
		Listen: *listen, Pprof: *pprofAddr,
		Trace: *traceOut, Interval: *traceInt, Metrics: *metrics,
		Flight: *flightOut, FlightDepth: *flightN,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: obs:", err)
		}
	}()
	defer rt.DumpOnPanic()
	if o := rt.Obs(); o != nil {
		ctx = rt.Context(ctx)
		if *metrics {
			defer func() { fmt.Print(o.Metrics.Format()) }()
		}
	}

	// Ablation rows accumulated this run, for -ledger-out and -baseline.
	var ledgerRows []bench.LedgerRow
	writeLedger := func() error {
		if *ledgerOut == "" {
			return nil
		}
		if len(ledgerRows) == 0 {
			return fmt.Errorf("-ledger-out: no ablation rows produced (select an ablation)")
		}
		l := bench.Ledger{
			Date: time.Now().Format("2006-01-02"),
			Seed: *seed,
			Rows: ledgerRows,
		}
		if err := bench.WriteLedger(*ledgerOut, l); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "benchtab: ledger written to %s (%d rows)\n", *ledgerOut, len(ledgerRows))
		return nil
	}

	if *baseline != "" {
		base, err := bench.ReadBaseline(*baseline)
		if err != nil {
			return err
		}
		needed := bench.AblationsNeeded(base)
		if len(needed) == 0 {
			return fmt.Errorf("baseline %s: no rows map to a known ablation", *baseline)
		}
		fmt.Fprintf(os.Stderr, "benchtab: baseline %s needs ablations: %s\n", *baseline, strings.Join(needed, ", "))
		for _, name := range needed {
			rows, err := runAblation(ctx, name, *seed, budgets)
			if err != nil {
				return err
			}
			ledgerRows = append(ledgerRows, bench.LedgerFromRows(rows)...)
		}
		if err := writeLedger(); err != nil {
			return err
		}
		tol := bench.Tolerances{StepsPct: *tolSteps, TimeRatio: *tolTime}
		regs := bench.CompareLedger(base, ledgerRows, tol)
		fmt.Print(bench.FormatComparison(*baseline, len(base), len(ledgerRows), regs))
		if len(regs) > 0 {
			return fmt.Errorf("%d benchmark regression(s) against %s", len(regs), *baseline)
		}
		return nil
	}

	emit := func(name string, rows any, text string) {
		if *asJSON {
			blob, err := json.MarshalIndent(map[string]any{"artifact": name, "rows": rows}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: json:", err)
				return
			}
			fmt.Println(string(blob))
			return
		}
		fmt.Println(text)
	}

	selected := func(t, f int) bool {
		if *ablation != "" && *table == 0 && *figure == 0 {
			return false
		}
		if !*only && *table == 0 && *figure == 0 {
			return true
		}
		return (*table != 0 && *table == t) || (*figure != 0 && *figure == f)
	}

	if selected(1, 0) {
		rows := bench.Table1()
		emit("table1", rows, bench.FormatTable1(rows))
	}
	if selected(2, 0) {
		rows, err := bench.TableModule(ctx, 1.0, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table2", rows, bench.FormatTableModule("TABLE II: Module breakdown at 100% sampling", rows))
	}
	if selected(3, 0) {
		rows, err := bench.TableModule(ctx, 0.3, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table3", rows, bench.FormatTableModule("TABLE III: Module breakdown at 30% sampling", rows))
	}
	if selected(4, 0) {
		rows, err := bench.Table4(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table4", rows, bench.FormatTable4(rows))
	}
	if selected(5, 0) {
		lines, err := bench.Table5(ctx, "polymorph", 10, *seed)
		if err != nil {
			return err
		}
		fmt.Println("TABLE V: Top 10 predicates for polymorph (30% sampling)")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
		fmt.Println()
	}
	if selected(0, 7) {
		rows, err := bench.Figure7(ctx, *seed)
		if err != nil {
			return err
		}
		emit("figure7", rows, bench.FormatFigure7(rows))
	}
	if selected(0, 8) {
		locs, vars, err := bench.Figure8("polymorph")
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 8: Instrumented locations and variables in polymorph")
		for i, l := range locs {
			fmt.Printf("  L%-3d %s\n", i+1, l)
		}
		fmt.Println("  variables: " + strings.Join(vars, ", "))
		fmt.Println()
	}
	if selected(0, 9) {
		lines, err := bench.Figure9(ctx, "polymorph", *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 9: Candidate paths for polymorph (30% sampling)")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
		fmt.Println()
	}
	if selected(0, 10) {
		rows, err := bench.Figure10(ctx, []string{"polymorph", "ctree"}, nil, *seed)
		if err != nil {
			return err
		}
		emit("figure10", rows, bench.FormatFigure10(rows))
	}

	doAblation := func(name string) error {
		rows, err := runAblation(ctx, name, *seed, budgets)
		if err != nil {
			return err
		}
		ledgerRows = append(ledgerRows, bench.LedgerFromRows(rows)...)
		emit("ablation-"+name, rows, bench.FormatAblation(ablationTitles[name], rows))
		return nil
	}
	doCorpus := func() error {
		crows, err := bench.AblationCorpusStore(ctx, *corpusDir, *seed)
		if err != nil {
			return err
		}
		emit("ablation-corpus", crows, bench.FormatCorpusAblation("ABLATION: corpus storage backends (JSON blob vs segmented store)", crows))
		return nil
	}
	switch *ablation {
	case "":
	case "corpus":
		if err := doCorpus(); err != nil {
			return err
		}
	case "all":
		for _, name := range []string{"scheduler", "guidance", "tau", "cache", "frontier"} {
			if err := doAblation(name); err != nil {
				return err
			}
		}
		if err := doCorpus(); err != nil {
			return err
		}
		if err := doAblation("summaries"); err != nil {
			return err
		}
		if err := doAblation("solvercache"); err != nil {
			return err
		}
		if err := doAblation("dispatch"); err != nil {
			return err
		}
	default:
		if _, ok := ablationTitles[*ablation]; !ok {
			return fmt.Errorf("unknown ablation %q", *ablation)
		}
		if err := doAblation(*ablation); err != nil {
			return err
		}
	}
	return writeLedger()
}
