// Command benchtab regenerates the paper's evaluation tables and figures
// from this reproduction. Without flags it runs everything; -table and
// -figure select individual artifacts; -ablation runs the design-choice
// ablations from DESIGN.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		table     = flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
		figure    = flag.Int("figure", 0, "regenerate one figure (7-10); 0 = all")
		ablation  = flag.String("ablation", "", "run an ablation: scheduler, guidance, tau, cache, frontier, corpus, summaries, all")
		corpusDir = flag.String("corpus-dir", "", "directory for the corpus ablation's on-disk artifacts (default: temp, discarded)")
		seed      = flag.Int64("seed", bench.DefaultSeed, "workload seed")
		parallel  = flag.Int("parallel", 1, "candidate-verification workers per pipeline run (1: sequential)")
		workers   = flag.Int("workers", 0, "in-candidate frontier workers per symbolic execution (0: sequential engine)")
		sharedCch = flag.Bool("shared-cache", true, "share solver verdicts across candidate verifications (wall-clock only; counters are unaffected)")
		scope     = flag.String("scope", "", "interpretation scope policy for guided runs (e.g. \"all\" or \"all,-logmsg\"); empty = everything in scope")
		summaries = flag.Bool("summaries", false, "replace summarizable in-scope calls by memoized path summaries in every guided pipeline run")
		only      = flag.Bool("only", false, "run only the selected table/figure")
		asJSON    = flag.Bool("json", false, "emit machine-readable JSON instead of text tables")
		traceOut  = flag.String("trace", "", "stream a JSONL event trace of every pipeline run to this file")
		traceInt  = flag.Duration("trace-interval", time.Second, "progress-snapshot period for -trace")
		metrics   = flag.Bool("metrics", false, "print the accumulated metrics registry at exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	budgets := bench.DefaultBudgets()
	budgets.Parallel = *parallel
	budgets.Workers = *workers
	budgets.DisableSharedCache = !*sharedCch
	budgets.Scope = *scope
	budgets.Summaries = *summaries

	// SIGINT/SIGTERM cancel the in-flight experiment cooperatively; the
	// partial rows computed so far are discarded, but the process exits
	// cleanly instead of being killed mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: pprof:", err)
			}
		}()
	}
	o, closeTrace, err := obs.Setup(*traceOut, *traceInt, *metrics)
	if err != nil {
		return err
	}
	defer func() {
		if err := closeTrace(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab: trace:", err)
		}
	}()
	if o != nil {
		ctx = obs.NewContext(ctx, o)
		if *metrics {
			defer func() { fmt.Print(o.Metrics.Format()) }()
		}
	}

	emit := func(name string, rows any, text string) {
		if *asJSON {
			blob, err := json.MarshalIndent(map[string]any{"artifact": name, "rows": rows}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: json:", err)
				return
			}
			fmt.Println(string(blob))
			return
		}
		fmt.Println(text)
	}

	selected := func(t, f int) bool {
		if *ablation != "" && *table == 0 && *figure == 0 {
			return false
		}
		if !*only && *table == 0 && *figure == 0 {
			return true
		}
		return (*table != 0 && *table == t) || (*figure != 0 && *figure == f)
	}

	if selected(1, 0) {
		rows := bench.Table1()
		emit("table1", rows, bench.FormatTable1(rows))
	}
	if selected(2, 0) {
		rows, err := bench.TableModule(ctx, 1.0, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table2", rows, bench.FormatTableModule("TABLE II: Module breakdown at 100% sampling", rows))
	}
	if selected(3, 0) {
		rows, err := bench.TableModule(ctx, 0.3, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table3", rows, bench.FormatTableModule("TABLE III: Module breakdown at 30% sampling", rows))
	}
	if selected(4, 0) {
		rows, err := bench.Table4(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("table4", rows, bench.FormatTable4(rows))
	}
	if selected(5, 0) {
		lines, err := bench.Table5(ctx, "polymorph", 10, *seed)
		if err != nil {
			return err
		}
		fmt.Println("TABLE V: Top 10 predicates for polymorph (30% sampling)")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
		fmt.Println()
	}
	if selected(0, 7) {
		rows, err := bench.Figure7(ctx, *seed)
		if err != nil {
			return err
		}
		emit("figure7", rows, bench.FormatFigure7(rows))
	}
	if selected(0, 8) {
		locs, vars, err := bench.Figure8("polymorph")
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 8: Instrumented locations and variables in polymorph")
		for i, l := range locs {
			fmt.Printf("  L%-3d %s\n", i+1, l)
		}
		fmt.Println("  variables: " + strings.Join(vars, ", "))
		fmt.Println()
	}
	if selected(0, 9) {
		lines, err := bench.Figure9(ctx, "polymorph", *seed)
		if err != nil {
			return err
		}
		fmt.Println("FIGURE 9: Candidate paths for polymorph (30% sampling)")
		for _, l := range lines {
			fmt.Println("  " + l)
		}
		fmt.Println()
	}
	if selected(0, 10) {
		rows, err := bench.Figure10(ctx, []string{"polymorph", "ctree"}, nil, *seed)
		if err != nil {
			return err
		}
		emit("figure10", rows, bench.FormatFigure10(rows))
	}

	switch *ablation {
	case "":
	case "scheduler":
		rows, err := bench.AblationScheduler(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-scheduler", rows, bench.FormatAblation("ABLATION: schedulers vs StatSym guidance", rows))
	case "guidance":
		rows, err := bench.AblationGuidance(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-guidance", rows, bench.FormatAblation("ABLATION: guidance mechanisms (inter/intra)", rows))
	case "tau":
		rows, err := bench.AblationTau(ctx, "thttpd", nil, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-tau", rows, bench.FormatAblation("ABLATION: hop threshold τ (thttpd)", rows))
	case "cache":
		rows, err := bench.AblationSolverCache(ctx, budgets)
		if err != nil {
			return err
		}
		emit("ablation-cache", rows, bench.FormatAblation("ABLATION: solver query cache (polymorph, pure)", rows))
	case "frontier":
		rows, err := bench.AblationFrontier(ctx, nil, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-frontier", rows, bench.FormatAblation("ABLATION: frontier worker scaling (guided + pure)", rows))
	case "corpus":
		rows, err := bench.AblationCorpusStore(ctx, *corpusDir, *seed)
		if err != nil {
			return err
		}
		emit("ablation-corpus", rows, bench.FormatCorpusAblation("ABLATION: corpus storage backends (JSON blob vs segmented store)", rows))
	case "summaries":
		rows, err := bench.AblationSummaries(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-summaries", rows, bench.FormatAblation("ABLATION: call interpretation vs memoized summaries", rows))
	case "all":
		rows, err := bench.AblationScheduler(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-scheduler", rows, bench.FormatAblation("ABLATION: schedulers vs StatSym guidance", rows))
		rows, err = bench.AblationGuidance(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-guidance", rows, bench.FormatAblation("ABLATION: guidance mechanisms (inter/intra)", rows))
		rows, err = bench.AblationTau(ctx, "thttpd", nil, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-tau", rows, bench.FormatAblation("ABLATION: hop threshold τ (thttpd)", rows))
		rows, err = bench.AblationSolverCache(ctx, budgets)
		if err != nil {
			return err
		}
		emit("ablation-cache", rows, bench.FormatAblation("ABLATION: solver query cache (polymorph, pure)", rows))
		rows, err = bench.AblationFrontier(ctx, nil, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-frontier", rows, bench.FormatAblation("ABLATION: frontier worker scaling (guided + pure)", rows))
		crows, err := bench.AblationCorpusStore(ctx, *corpusDir, *seed)
		if err != nil {
			return err
		}
		emit("ablation-corpus", crows, bench.FormatCorpusAblation("ABLATION: corpus storage backends (JSON blob vs segmented store)", crows))
		rows, err = bench.AblationSummaries(ctx, *seed, budgets)
		if err != nil {
			return err
		}
		emit("ablation-summaries", rows, bench.FormatAblation("ABLATION: call interpretation vs memoized summaries", rows))
	default:
		return fmt.Errorf("unknown ablation %q", *ablation)
	}
	return nil
}
