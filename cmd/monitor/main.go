// Command monitor collects runtime logs for an evaluation application: it
// generates random user runs, executes them under the instrumented VM with
// the requested sampling rate, and writes the labeled corpus to a file that
// cmd/statsym can analyze later (the deployment split of the paper: logging
// happens in the field, analysis happens offline).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/apps"
	corpusstore "repro/internal/corpus"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "monitor:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName = flag.String("app", "polymorph", "application: polymorph, ctree, thttpd, grep (paper) or msgtool, billing (extensions)")
		rate    = flag.Float64("rate", 0.3, "per-event log sampling rate (0..1]")
		seed    = flag.Int64("seed", 1, "workload and sampling seed")
		runs    = flag.Int("runs", workload.DefaultRuns, "correct and faulty runs to collect (each)")
		out     = flag.String("o", "", "output corpus file (default <app>-<rate>.log)")
		store   = flag.String("store", "", "spill runs to a segmented binary corpus store at this directory instead of a JSON corpus file")
	)
	flag.Parse()

	app, err := apps.Get(*appName)
	if err != nil {
		return err
	}
	opts := workload.Options{SampleRate: *rate, Seed: *seed, Correct: *runs, Faulty: *runs}
	if *store != "" {
		s, err := corpusstore.Create(*store, app.Name)
		if err != nil {
			return err
		}
		if err := workload.BuildCorpusStoreCtx(context.Background(), app, opts, s, corpusstore.Options{}); err != nil {
			return err
		}
		nR, nL, nV, err := s.Counts()
		if err != nil {
			return err
		}
		fmt.Printf("stored %s: %d runs (%d locations, %d variables), %d bytes in %d segments\n",
			*store, nR, nL, nV, s.TotalBytes(), len(s.Segments()))
		return nil
	}
	corpus, err := workload.BuildCorpus(app, opts)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%02.0f.log", app.Name, *rate*100)
	}
	// A .gz suffix enables transparent compression.
	n, err := corpus.WriteFile(path)
	if err != nil {
		return err
	}
	nR, nL, nV := corpus.Counts()
	fmt.Printf("wrote %s: %d runs (%d locations, %d variables), %d bytes\n", path, nR, nL, nV, n)
	return nil
}
