// Command statsym runs the full StatSym pipeline on one of the four
// evaluation applications: collect sampled logs from random user runs,
// perform statistical analysis (predicates + candidate paths), and drive
// statistics-guided symbolic execution until the vulnerable path is
// verified. With -pure it instead runs the unguided baseline (KLEE-style
// pure symbolic execution) for comparison.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	corpusstore "repro/internal/corpus"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/obs/live"
	"repro/internal/report"
	"repro/internal/symexec"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "statsym:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		appName   = flag.String("app", "polymorph", "application: polymorph, ctree, thttpd, grep (paper) or msgtool, billing (extensions)")
		corpusIn  = flag.String("corpus", "", "analyze a pre-collected corpus file (from cmd/monitor) instead of collecting logs")
		corpusDir = flag.String("corpus-dir", "", "use a segmented on-disk corpus store at this directory: reuse it if it holds runs, otherwise collect into it; analysis then streams off disk")
		rate      = flag.Float64("rate", 0.3, "log sampling rate (0..1]")
		seed      = flag.Int64("seed", 1, "workload and sampling seed")
		runs      = flag.Int("runs", workload.DefaultRuns, "correct and faulty runs to collect (each)")
		tau       = flag.Int("tau", core.DefaultTau, "hop divergence threshold τ")
		pure      = flag.Bool("pure", false, "run the pure symbolic execution baseline instead")
		maxStates = flag.Int("max-states", 0, "live-state budget (0: default)")
		maxSteps  = flag.Int64("max-steps", 0, "instruction budget (0: default)")
		timeout   = flag.Duration("timeout", 0, "wall-clock bound for symbolic execution (0: none)")
		parallel  = flag.Int("parallel", 1, "verify candidate paths with this many concurrent workers (1: the paper's sequential loop)")
		workers   = flag.Int("workers", 0, "in-candidate frontier workers (0: sequential engine; >=1: deterministic epoch engine, results independent of the count)")
		sharedCch = flag.Bool("shared-cache", true, "share solver verdicts across candidate verifications (wall-clock only; counters are unaffected)")
		cacheDir  = flag.String("cache-dir", "", "persist solver-cache verdicts across runs in this directory: prior verdicts warm-start this run (verified on load), fresh ones spill back; wall-clock only, detections are unaffected")
		increment = flag.Bool("incremental", false, "with -cache-dir: diff the cache manifest's function hashes against the program and re-run only candidate paths crossing changed functions")
		dispatchF = flag.Bool("dispatch", false, "verify candidate paths through the dispatch backend (whole attempts shipped to -worker-addrs workers plus local slots); detections and the digest are identical to the sequential loop for any topology")
		workerStr = flag.String("worker-addrs", "", "comma-separated dispatch worker addresses (unix:/path or tcp:host:port), each one a `symexec -serve-worker` process; empty with -dispatch runs local-only")
		dispLog   = flag.String("dispatch-log", "", "append a JSONL audit trail of dispatch scheduling decisions (steal, redispatch, merge) to this file")
		unitDl    = flag.Duration("unit-deadline", 0, "per-unit round-trip deadline before a worker is declared hung and its unit re-run locally (0: 10m default)")
		scope     = flag.String("scope", "", "interpretation scope policy: \"\" or \"all\" interprets everything; \"all,-f,-g\" havocs f and g; \"f,g\" interprets exactly that list plus main")
		summaries = flag.Bool("summaries", false, "replace summarizable in-scope calls by memoized path summaries shared across candidate attempts (detection-equivalent under a full-coverage scope)")
		verbose   = flag.Bool("v", false, "print predicates and candidate paths")
		minimize  = flag.Bool("minimize", false, "shrink the witness input via concrete replays")
		dotOut    = flag.String("dot", "", "write the transition graph (Graphviz DOT) to this file")
		witOut    = flag.String("witness-out", "", "write the witness input (JSON) to this file for replay")
		htmlOut   = flag.String("html", "", "write a self-contained HTML report to this file")
		traceOut  = flag.String("trace", "", "stream a JSONL event trace (spans, progress, warnings) to this file")
		traceInt  = flag.Duration("trace-interval", time.Second, "progress-snapshot period for -trace")
		metrics   = flag.Bool("metrics", false, "print the metrics registry at exit (and embed it in -html)")
		listen    = flag.String("listen", "", "serve live introspection (/metrics, /progress, /spans, pprof) on this address (e.g. localhost:6060)")
		pprofAddr = flag.String("pprof", "", "deprecated alias for -listen (pprof rides the same mux)")
		flightOut = flag.String("flight", "", "dump the flight-recorder ring (JSONL) to this file on fault, panic, or interrupt")
		flightN   = flag.Int("flight-depth", flight.DefaultDepth, "flight-recorder events retained per category")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the pipeline cooperatively: symbolic execution
	// stops within one scheduling quantum and the partial report (and any
	// requested artifacts) is still emitted below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := live.Init(live.Options{
		Binary: "statsym",
		Listen: *listen, Pprof: *pprofAddr,
		Trace: *traceOut, Interval: *traceInt, Metrics: *metrics,
		Flight: *flightOut, FlightDepth: *flightN,
	})
	if err != nil {
		return err
	}
	defer func() {
		if err := rt.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "statsym: obs:", err)
		}
	}()
	defer rt.DumpOnPanic()
	o := rt.Obs()
	ctx = rt.Context(ctx)
	dumpMetrics := func() {
		if o != nil && *metrics {
			fmt.Print(o.Metrics.Format())
		}
	}
	defer dumpMetrics()

	app, err := apps.Get(*appName)
	if err != nil {
		return err
	}
	fmt.Printf("== %s: %s\n", app.Name, app.Description)

	if *increment && *cacheDir == "" {
		return fmt.Errorf("-incremental requires -cache-dir")
	}
	if *increment {
		plan, err := core.PlanIncremental(*cacheDir, app.Program())
		if err != nil {
			return err
		}
		fmt.Printf("-- %s\n", plan.Describe())
	}

	if *pure {
		fmt.Println("-- pure symbolic execution (baseline)")
		start := time.Now()
		pctx, pspan := obs.StartSpan(ctx, "pure", obs.A("app", app.Name))
		res := core.RunPureWorkers(pctx, app.Program(), app.Spec, *maxStates, *maxSteps, *timeout, *workers)
		pspan.End(obs.A("paths", res.Paths), obs.A("steps", res.Steps), obs.A("found", res.Found()))
		if res.Found() {
			rt.NoteFault()
		}
		printPureResult(res, time.Since(start))
		return nil
	}

	// One root span covers corpus collection and the guided pipeline;
	// core.RunContext reuses it instead of opening a second root.
	ctx, root := obs.StartSpan(ctx, "pipeline", obs.A("app", app.Name), obs.A("rate", *rate))
	defer root.End()

	cfg := core.Config{
		Tau:                 *tau,
		Spec:                app.Spec,
		PerCandidateTimeout: *timeout,
		PerCandidateMaxSteps: func() int64 {
			if *maxSteps > 0 {
				return *maxSteps
			}
			return 0
		}(),
		MaxStates:          *maxStates,
		Parallel:           *parallel,
		Workers:            *workers,
		DisableSharedCache: !*sharedCch,
		CacheDir:           *cacheDir,
		Incremental:        *increment,
		NeedGraph:          *dotOut != "",
		Scope:              *scope,
		Summaries:          *summaries,
		Dispatch:           *dispatchF,
		WorkerAddrs:        splitAddrs(*workerStr),
		DispatchLog:        *dispLog,
		UnitDeadline:       *unitDl,
	}
	if len(cfg.WorkerAddrs) > 0 && !cfg.Dispatch {
		return fmt.Errorf("-worker-addrs requires -dispatch")
	}

	if *corpusDir != "" {
		// Store-backed pipeline: the statistical front-end streams off the
		// segmented store instead of materializing the corpus.
		store, err := corpusstore.Create(*corpusDir, app.Name)
		if err != nil {
			return err
		}
		var monElapsed time.Duration
		if store.TotalRuns() > 0 {
			fmt.Printf("-- reusing corpus store %s (%d runs, %d segments)\n",
				*corpusDir, store.TotalRuns(), len(store.Segments()))
		} else {
			fmt.Printf("-- collecting %d correct + %d faulty runs at %.0f%% sampling into %s\n",
				*runs, *runs, *rate*100, *corpusDir)
			monStart := time.Now()
			err := workload.BuildCorpusStoreCtx(ctx, app, workload.Options{
				SampleRate: *rate, Seed: *seed, Correct: *runs, Faulty: *runs,
			}, store, corpusstore.Options{})
			if err != nil {
				if errors.Is(err, context.Canceled) {
					fmt.Println("RESULT: interrupted during log collection — no report")
					return nil
				}
				return err
			}
			monElapsed = time.Since(monStart)
		}
		nR, nL, nV, err := store.Counts()
		if err != nil {
			return err
		}
		fmt.Printf("   corpus store: %d runs, %d locations, %d variables, %d KB on disk in %d segments (collected in %v)\n",
			nR, nL, nV, store.TotalBytes()/1024, len(store.Segments()), monElapsed.Round(time.Millisecond))
		rep, err := core.RunStoreContext(ctx, app.Program(), store, cfg)
		if err != nil {
			return err
		}
		rep.MonTime = monElapsed
		if rep.Found() {
			rt.NoteFault()
		}
		return printReport(rep, app, o, verbose, dotOut, htmlOut, witOut, minimize)
	}

	var corpus *trace.Corpus
	var monElapsed time.Duration
	if *corpusIn != "" {
		var err error
		corpus, err = trace.ReadFile(*corpusIn)
		if err != nil {
			return err
		}
		if corpus.Program != app.Name {
			return fmt.Errorf("corpus %s was collected for %q, not %q", *corpusIn, corpus.Program, app.Name)
		}
		fmt.Printf("-- loaded corpus %s\n", *corpusIn)
	} else {
		fmt.Printf("-- collecting %d correct + %d faulty runs at %.0f%% sampling\n", *runs, *runs, *rate*100)
		monStart := time.Now()
		var err error
		corpus, err = workload.BuildCorpusCtx(ctx, app, workload.Options{
			SampleRate: *rate, Seed: *seed, Correct: *runs, Faulty: *runs,
		})
		if err != nil {
			// A SIGINT during collection is a cooperative stop, not a
			// failure; there is no corpus yet, so there is no report.
			if errors.Is(err, context.Canceled) {
				fmt.Println("RESULT: interrupted during log collection — no report")
				return nil
			}
			return err
		}
		monElapsed = time.Since(monStart)
	}
	nR, nL, nV := corpus.Counts()
	fmt.Printf("   corpus: %d runs, %d locations, %d variables, ~%d KB (collected in %v)\n",
		nR, nL, nV, corpus.SizeBytes()/1024, monElapsed.Round(time.Millisecond))

	rep, err := core.RunContext(ctx, app.Program(), corpus, cfg)
	if err != nil {
		return err
	}
	rep.MonTime = monElapsed
	if rep.Found() {
		rt.NoteFault()
	}
	return printReport(rep, app, o, verbose, dotOut, htmlOut, witOut, minimize)
}

// printReport renders the pipeline report — shared by the in-memory and
// store-backed paths.
func printReport(rep *core.Report, app *apps.App, o *obs.Obs,
	verbose *bool, dotOut, htmlOut, witOut *string, minimize *bool) error {
	statNote := ""
	if rep.StatsCached {
		statNote = ", replayed from cache"
	}
	fmt.Printf("-- statistical analysis: %v (predicates: %d, detours: %d, candidates: %d%s)\n",
		rep.StatTime.Round(time.Millisecond), len(rep.Analysis.Predicates),
		rep.Detours(), len(rep.PathRes.Candidates), statNote)
	if *verbose {
		fmt.Println("   top predicates:")
		for i, p := range rep.Analysis.Top(10) {
			fmt.Printf("     P%-2d %-45s @ %s (score %.3f)\n", i+1, p.String(), p.Loc, p.Score)
		}
		fmt.Printf("   skeleton (%d nodes):\n", len(rep.PathRes.Skeleton))
		for _, l := range rep.PathRes.Skeleton {
			fmt.Printf("     %s\n", l)
		}
		for i, cand := range rep.PathRes.Candidates {
			fmt.Printf("   candidate %d: %d nodes, avg score %.3f, %d detours\n",
				i+1, cand.Len(), cand.AvgScore, cand.Detours)
		}
	}
	if *dotOut != "" {
		dot := rep.PathRes.Graph.WriteDOT(rep.Analysis, rep.PathRes.Skeleton)
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			return err
		}
		fmt.Printf("   transition graph written to %s\n", *dotOut)
	}
	fmt.Printf("-- symbolic execution: %v\n", rep.SymTime.Round(time.Millisecond))
	for _, c := range rep.Candidates {
		status := "no vulnerability"
		switch {
		case c.Found:
			status = "VULNERABLE PATH FOUND"
		case c.Cancelled:
			status = "cancelled"
		case c.Infeasible:
			status = "infeasible / abandoned"
		}
		fmt.Printf("   candidate %d (len %d): %s — %d paths, %d steps, %d suspensions, %v (solver: %d checks, %d hits / %d misses, %d fast-paths, %v)\n",
			c.Index, c.PathLen, status, c.Paths, c.Steps, c.Suspends, c.Elapsed.Round(time.Millisecond),
			c.SolverChecks, c.CacheHits, c.CacheMisses, c.CacheFastSat+c.CacheFastUnsat, c.SolverTime.Round(time.Millisecond))
	}
	if rep.SkippedCandidates > 0 {
		fmt.Printf("   incremental: %d candidate paths skipped (no changed function on the path)\n",
			rep.SkippedCandidates)
	}
	if rep.DispatchRemote+rep.DispatchLocal+rep.DispatchRedispatched+rep.DispatchWorkersDead > 0 {
		fmt.Printf("-- dispatch: remote=%d local=%d redispatched=%d dead-workers=%d\n",
			rep.DispatchRemote, rep.DispatchLocal, rep.DispatchRedispatched, rep.DispatchWorkersDead)
	}
	if rep.PersistLoaded+rep.PersistHits+rep.PersistSpilled+rep.PersistRejected+rep.PersistInvalidated > 0 {
		fmt.Printf("-- solver cache: %d loaded, %d warm hits, %d spilled, %d rejected, %d invalidated\n",
			rep.PersistLoaded, rep.PersistHits, rep.PersistSpilled, rep.PersistRejected, rep.PersistInvalidated)
	}
	fmt.Printf("-- detection digest: %s\n", core.DigestToken(rep))
	writeHTML := func() error {
		if *htmlOut == "" {
			return nil
		}
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		if o != nil {
			err = report.WriteHTMLWithMetrics(f, rep, time.Now().Format("2006-01-02 15:04:05"), o.Metrics.Snapshot())
		} else {
			err = report.WriteHTML(f, rep, time.Now().Format("2006-01-02 15:04:05"))
		}
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		fmt.Printf("   HTML report written to %s\n", *htmlOut)
		return nil
	}
	if !rep.Found() {
		if rep.Cancelled {
			fmt.Printf("RESULT: interrupted — partial report (%d of %d candidates attempted)\n",
				len(rep.Candidates), len(rep.PathRes.Candidates))
		} else {
			fmt.Println("RESULT: vulnerable path not found")
		}
		return writeHTML()
	}
	v := rep.Vuln
	fmt.Printf("RESULT: %s in %s at %s (candidate %d, %d paths total)\n",
		v.Kind, v.Func, v.Pos, rep.CandidateUsed, rep.TotalPaths)
	fmt.Println("   vulnerable path:")
	for _, loc := range v.Path {
		fmt.Printf("     %s\n", loc)
	}
	fmt.Println("   path constraints:")
	max := len(v.Constraints)
	if max > 20 {
		max = 20
	}
	for _, c := range v.Constraints[:max] {
		fmt.Printf("     %s\n", c.String(nil))
	}
	if len(v.Constraints) > max {
		fmt.Printf("     ... (%d more)\n", len(v.Constraints)-max)
	}
	fmt.Println("   witness input:")
	if v.Witness != nil {
		for k, val := range v.Witness.Ints {
			fmt.Printf("     int %s = %d\n", k, val)
		}
		for k, val := range v.Witness.Strs {
			fmt.Printf("     string %s = %s\n", k, summarize(val))
		}
		for k, val := range v.Witness.Env {
			fmt.Printf("     env %s = %s\n", k, summarize(val))
		}
		if len(v.Witness.Args) > 0 {
			fmt.Printf("     args =")
			for _, a := range v.Witness.Args {
				fmt.Printf(" %s", summarize(a))
			}
			fmt.Println()
		}
	}
	if err := writeHTML(); err != nil {
		return err
	}
	if *witOut != "" && v.Witness != nil {
		if err := interp.SaveInput(*witOut, v.Witness); err != nil {
			return err
		}
		fmt.Printf("   witness written to %s (replay: symexec -app %s -replay %s)\n",
			*witOut, app.Name, *witOut)
	}
	if *minimize && v.Witness != nil {
		min, replays := core.MinimizeWitness(app.Program(), v.Witness, 512)
		fmt.Printf("   minimized witness (%d replays):\n", replays)
		for k, val := range min.Ints {
			fmt.Printf("     int %s = %d\n", k, val)
		}
		for k, val := range min.Strs {
			fmt.Printf("     string %s = %s\n", k, summarize(val))
		}
		for k, val := range min.Env {
			fmt.Printf("     env %s = %s\n", k, summarize(val))
		}
		if len(min.Args) > 0 {
			fmt.Printf("     args =")
			for _, a := range min.Args {
				fmt.Printf(" %s", summarize(a))
			}
			fmt.Println()
		}
	}
	return nil
}

// splitAddrs parses a comma-separated -worker-addrs value.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func summarize(s string) string {
	if len(s) <= 48 {
		return fmt.Sprintf("%q", s)
	}
	return fmt.Sprintf("%q... (%d bytes)", s[:32], len(s))
}

func printPureResult(res *symexec.Result, elapsed time.Duration) {
	switch {
	case res.Found():
		v := res.Vulns[0]
		fmt.Printf("RESULT: %s in %s after %d paths, %d steps (%v)\n",
			v.Kind, v.Func, res.Paths, res.Steps, elapsed.Round(time.Millisecond))
	case res.Exhausted:
		fmt.Printf("RESULT: FAILED — state budget exhausted (max live %d) after %d paths, %d steps (%v)\n",
			res.MaxLive, res.Paths, res.Steps, elapsed.Round(time.Millisecond))
	case res.StepLimited:
		fmt.Printf("RESULT: FAILED — step budget exhausted after %d paths (%v)\n", res.Paths, elapsed.Round(time.Millisecond))
	case res.TimedOut:
		fmt.Printf("RESULT: FAILED — timed out after %d paths (%v)\n", res.Paths, elapsed.Round(time.Millisecond))
	case res.Cancelled:
		fmt.Printf("RESULT: interrupted after %d paths, %d steps (%v)\n",
			res.Paths, res.Steps, elapsed.Round(time.Millisecond))
	default:
		fmt.Printf("RESULT: explored all %d paths without finding a vulnerability (%v)\n",
			res.Paths, elapsed.Round(time.Millisecond))
	}
}
