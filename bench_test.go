// Package repro_test hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (§VII), plus the ablation benches listed in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its artifact end to end (workload generation,
// monitoring, statistical analysis, symbolic execution), so ns/op is the
// artifact's full regeneration cost.
package repro_test

import (
	"context"
	"testing"

	"repro/internal/bench"
)

func BenchmarkTable1ProgramStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func benchModuleTable(b *testing.B, rate float64) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableModule(context.Background(), rate, bench.DefaultSeed, budgets)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Found {
				b.Fatalf("%s: vulnerable path not found at %.0f%% sampling", r.Program, rate*100)
			}
		}
	}
}

func BenchmarkTable2Sampling100(b *testing.B) { benchModuleTable(b, 1.0) }

func BenchmarkTable3Sampling30(b *testing.B) { benchModuleTable(b, 0.3) }

func BenchmarkTable4GuidedVsPure(b *testing.B) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table4(context.Background(), bench.DefaultSeed, budgets)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.GuidedFound {
				b.Fatalf("%s: StatSym failed", r.Program)
			}
		}
	}
}

func BenchmarkTable5Predicates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines, err := bench.Table5(context.Background(), "polymorph", 10, bench.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(lines) != 10 {
			b.Fatalf("got %d predicates", len(lines))
		}
	}
}

func BenchmarkFigure7PathLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure7(context.Background(), bench.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

func BenchmarkFigure9CandidatePaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lines, err := bench.Figure9(context.Background(), "polymorph", bench.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(lines) == 0 {
			b.Fatal("no candidate paths")
		}
	}
}

func BenchmarkFigure10Sensitivity(b *testing.B) {
	// The full sweep is expensive; the benchmark uses three rates.
	rates := []float64{0.2, 0.5, 1.0}
	for i := 0; i < b.N; i++ {
		rows, err := bench.Figure10(context.Background(), []string{"polymorph", "ctree"}, rates, bench.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Found {
				b.Fatalf("%s at %.0f%%: not found", r.Program, r.Rate*100)
			}
		}
	}
}

func BenchmarkAblationScheduler(b *testing.B) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationScheduler(context.Background(), bench.DefaultSeed, budgets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGuidance(b *testing.B) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationGuidance(context.Background(), bench.DefaultSeed, budgets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTau(b *testing.B) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationTau(context.Background(), "thttpd", nil, bench.DefaultSeed, budgets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSolverCache(b *testing.B) {
	budgets := bench.DefaultBudgets()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationSolverCache(context.Background(), budgets); err != nil {
			b.Fatal(err)
		}
	}
}
